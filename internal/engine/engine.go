// Package engine implements the non-blocking update protocol of
// Shafiei, "Non-blocking Patricia Tries with Replace Operations"
// (ICDCS 2013), exactly once, generic over the key type. A Trie[K, V]
// is a linearizable set of (already encoded) keys K — and, through the
// value payload V carried unboxed on leaves, a linearizable K → V map
// — with
//
//   - a read-only Contains/Load (the paper's find) that performs no CAS
//     and never writes shared memory; it is wait-free whenever K has
//     bounded length (Uint64Key, MortonKey) and lock-free for unbounded
//     keys (Bitstring, the paper's Section VI),
//   - lock-free Insert, Delete and value updates, and
//   - a lock-free Replace(old, new) that removes one key and inserts
//     another atomically at a single linearization point.
//
// Coordination follows the flag/help scheme of Ellen et al. (PODC
// 2010), extended per the paper: every update publishes a descriptor
// (the paper's Flag object) carrying everything helpers need, flags the
// internal nodes whose child pointers it will change (in label order,
// to avoid livelock), performs the child CASes, and unflags the
// survivors. Nodes removed from the trie stay flagged forever, and
// child pointers are only ever swung to freshly allocated nodes, so
// neither info nor child fields can suffer ABA. Memory reclamation is
// the garbage collector's job, exactly as in the paper's Java setting.
//
// The engine is deliberately key-agnostic: everything it needs from K
// is the small keys.Key interface (bit access, length, prefix tests,
// longest common prefix, a total label order) plus the two dummy keys
// bounding the encoded key space, handed to New. The fixed-width trie
// (internal/core), the byte-string trie (internal/strtrie) and the
// Morton-keyed spatial trie (internal/spatial) are thin instantiations;
// a new key space is an encoding plus two dummies, never a fourth copy
// of this protocol.
//
// The hot paths are allocation-lean (see DESIGN.md): values are stored
// unboxed in the leaf, descriptors are built from fixed-size arrays
// that live on the caller's stack, and speculative node construction is
// deferred until the captured info values are known not to belong to a
// conflicting update. The one allocation that must never be optimized
// away is the fresh Unflag written by every unflag CAS: reusing Unflag
// objects would let a node's info field repeat a value, re-opening the
// ABA window the paper closes.
package engine

import (
	"sync"
	"sync/atomic"

	"nbtrie/internal/keys"
)

// node is the paper's Node type. Leaves and internal nodes share one
// struct: a node is a leaf iff leaf is true, in which case its child
// pointers are never set. The label is immutable after construction;
// leaf labels are full-length encoded keys, internal labels proper
// prefixes of them.
type node[K keys.Key[K], V any] struct {
	label K
	leaf  bool

	// gen is the snapshot generation the node was created in, immutable
	// after construction (see snapshot.go). Internal nodes belonging to a
	// generation older than the current root's must be copied into the
	// current generation before an update may flag them or swing their
	// child pointers — that copy-on-write discipline is what freezes the
	// structure reachable from a snapshot's root. Leaf gens are never
	// consulted: leaves are structurally immutable, and the one mutation
	// they can suffer (a general-case replace storing its Flag into the
	// removed leaf's info) is filtered generationally through the Flag's
	// pNode[0].gen instead (see Snapshot.removed).
	gen uint64

	// val is the value payload of a leaf, stored unboxed (zero for
	// internal nodes; set views instantiate V = struct{}, which occupies
	// no space at all). Like the label it is immutable after
	// construction: a value update installs a fresh leaf through the
	// same child-CAS path as every other update, so the no-ABA argument
	// — child pointers are only ever swung to freshly allocated nodes —
	// is untouched, and readers never observe a half-written value.
	val V

	// info stores a pointer to the descriptor of the update operating on
	// this node (a Flag object), or a fresh unflag descriptor when no
	// update is in progress. It is never nil: the paper uses allocated
	// Unflag objects rather than null precisely so that info values never
	// repeat and flag CASes cannot suffer ABA.
	info atomic.Pointer[desc[K, V]]

	// child holds the left (0) and right (1) children of an internal node.
	child [2]atomic.Pointer[node[K, V]]
}

// newLeaf returns a leaf node with the given full-length label, a zero
// value payload and a fresh unflag descriptor.
func newLeaf[K keys.Key[K], V any](label K) *node[K, V] {
	var zero V
	return newLeafVal(label, zero)
}

// newLeafVal returns a leaf node carrying a value payload.
func newLeafVal[K keys.Key[K], V any](label K, val V) *node[K, V] {
	n := &node[K, V]{label: label, leaf: true, val: val}
	n.info.Store(newUnflag[K, V]())
	return n
}

// newInternal returns an internal node with the given label, children and
// snapshot generation. The children must already be ordered: left's bit at
// the label length is 0.
func newInternal[K keys.Key[K], V any](label K, left, right *node[K, V], gen uint64) *node[K, V] {
	n := &node[K, V]{label: label, gen: gen}
	n.info.Store(newUnflag[K, V]())
	n.child[0].Store(left)
	n.child[1].Store(right)
	return n
}

// copyNode returns a fresh copy of n stamped with the given generation
// (the paper's "new copy of node", lines 26 and 52). For an internal node
// the children are read now; the caller must have read n's info field
// beforehand, which — per Lemma 31 — guarantees the children cannot change
// between this copy and the child CAS that installs it, so the copy is
// faithful when it becomes reachable.
func copyNode[K keys.Key[K], V any](n *node[K, V], gen uint64) *node[K, V] {
	if n.leaf {
		return newLeafVal(n.label, n.val)
	}
	return newInternal(n.label, n.child[0].Load(), n.child[1].Load(), gen)
}

// descKind discriminates the two Info subtypes of the paper.
type descKind uint8

const (
	kindUnflag descKind = iota + 1 // no update in progress at the node
	kindFlag                       // an update owns the node
)

// desc is the paper's Info object. A desc with kind == kindUnflag uses no
// other field; a fresh unflag is allocated for every unflagging so that a
// node's info field never repeats a value. A desc with kind == kindFlag
// describes one update operation completely, so that any process reading
// it can finish the update (help).
//
// Fixed-size arrays with explicit lengths keep each descriptor to a single
// allocation; an update flags at most four internal nodes and changes at
// most two child pointers (the replace general case). newDesc receives
// the same fixed-size arrays as stack values, so a failed attempt
// allocates nothing at all.
type desc[K keys.Key[K], V any] struct {
	kind descKind

	nFlag   uint8 // entries used in flag/oldInfo
	nUnflag uint8 // entries used in unflag
	nPNode  uint8 // entries used in pNode/oldChild/newChild

	// flag lists the internal nodes to flag, sorted by label; oldInfo[i]
	// is the expected prior value of flag[i].info for the flag CAS.
	flag    [4]*node[K, V]
	oldInfo [4]*desc[K, V]

	// unflag lists the flagged nodes that remain in the trie and must be
	// unflagged once the child CASes are done. Nodes in flag but not in
	// unflag are removed by the update and stay flagged ("marked").
	unflag [2]*node[K, V]

	// For each i, the update CASes the appropriate child pointer of
	// pNode[i] from oldChild[i] to newChild[i].
	pNode    [2]*node[K, V]
	oldChild [2]*node[K, V]
	newChild [2]*node[K, V]

	// rmvLeaf, when non-nil, is the leaf holding the replaced key of a
	// general-case replace. It is flagged (plain store) after all flag
	// CASes succeed and before the first child CAS; searches reaching it
	// afterwards use logicallyRemoved to decide whether the key is gone.
	rmvLeaf *node[K, V]

	// flagDone is set once every node in flag was flagged successfully;
	// helpers use it to distinguish "the update already happened and the
	// node was unflagged" from "flagging failed, back off" (lines 93-106).
	flagDone atomic.Bool
}

// newUnflag allocates a fresh Unflag descriptor. The allocation is
// load-bearing: each unflag CAS must install a pointer the node's info
// field has never held before, or a delayed flag CAS comparing against a
// recycled Unflag could succeed long after its update was decided (ABA).
// Do not pool or intern these.
func newUnflag[K keys.Key[K], V any]() *desc[K, V] { return &desc[K, V]{kind: kindUnflag} }

// flagged reports whether d is a Flag descriptor.
func (d *desc[K, V]) flagged() bool { return d.kind == kindFlag }

// Trie is the shared non-blocking Patricia trie over encoded keys K with
// unboxed value payloads V. All methods are safe for concurrent use by
// any number of goroutines without external synchronization. Key
// encoding and range validation live in the instantiating package; the
// engine only ever sees full-length encoded keys strictly between the
// two dummies.
type Trie[K keys.Key[K], V any] struct {
	// root is swapped wholesale by Snapshot (a fresh copy carrying the
	// next generation), so it is an atomic pointer; everything below it
	// is reached through the usual child pointers. Readers may load
	// either side of a racing swap — both are valid linearizable views.
	root atomic.Pointer[node[K, V]]

	// snapMu is the snapshot barrier. Every mutating operation holds the
	// read side for its whole invocation (search, retries, helping);
	// Snapshot takes the write side just long enough to swap in a fresh
	// root with a bumped generation and read the entry count. Draining
	// the read side guarantees no in-flight update — whose flag targets
	// were validated against the previous generation — can mutate the
	// structure the snapshot captured after Snapshot returns; updates
	// that start afterwards see the new generation and copy-on-write any
	// stale internal node before touching it (see snapshot.go). Reads
	// never take the lock: Load/Contains/iteration stay CAS- and
	// lock-free.
	snapMu sync.RWMutex

	dummyMin, dummyMax K

	// count tracks the number of live user keys for Len. It is bumped by
	// the *initiating* goroutine of a successful insert or delete — never
	// by helpers, so each successful operation is counted exactly once —
	// strictly after the operation's linearization point (the child CAS
	// inside help). Replace and value overwrites do not change the key
	// count and never touch it. Consequences: Len is exact whenever no
	// mutation is in flight, and under concurrency it lags the linearized
	// state by at most the number of in-flight mutations (each op's bump
	// lands within its own invocation window, so Len is always a value
	// the set held at some point inside the read's own window of
	// concurrent operations).
	count atomic.Int64

	// skipRmvdCheck applies the paper's Section V optimization for
	// workloads without replace operations: the search does not inspect
	// leaf info fields for logical removal. Replace must not be used on
	// such a trie.
	skipRmvdCheck bool
}

// Option configures a Trie.
type Option[K keys.Key[K], V any] func(*Trie[K, V])

// WithoutReplace applies the paper's Section V optimization ("we
// eliminated the rmvd variable in search operations"): searches skip the
// logical-removal check that only replace operations can trigger. Calling
// Replace on a trie built with this option panics.
func WithoutReplace[K keys.Key[K], V any]() Option[K, V] {
	return func(t *Trie[K, V]) { t.skipRmvdCheck = true }
}

// New returns an empty trie anchored by the two dummy leaves, which must
// bound every encoded key the instantiation will ever pass in. The zero
// value of K must be the empty string; it labels the root.
func New[K keys.Key[K], V any](dummyMin, dummyMax K, opts ...Option[K, V]) *Trie[K, V] {
	var empty K
	t := &Trie[K, V]{dummyMin: dummyMin, dummyMax: dummyMax}
	t.root.Store(newInternal(empty,
		newLeaf[K, V](dummyMin),
		newLeaf[K, V](dummyMax), 0))
	for _, o := range opts {
		o(t)
	}
	return t
}

// curGen returns the current snapshot generation — the generation of the
// current root. Mutating operations read it under the snapMu read lock,
// where it cannot change for the duration of the operation.
func (t *Trie[K, V]) curGen() uint64 { return t.root.Load().gen }

// searchResult carries the paper's 6-tuple ⟨gp, p, node, gpInfo, pInfo,
// rmvd⟩ returned by search.
type searchResult[K keys.Key[K], V any] struct {
	gp, p, node   *node[K, V]
	gpInfo, pInfo *desc[K, V]
	rmvd          bool
}

// search locates the encoded key v, per lines 76-85. It starts at the
// root and descends by the bit of v at each node's label length, stopping
// at a leaf or at an internal node whose label is no longer a proper
// prefix of v. Labels strictly lengthen along any path (Invariant 7), so
// the loop runs at most |v| times: wait-free for bounded key types,
// lock-free (bounded by the key's own length plus concurrent
// restructuring) for unbounded ones. It performs no CAS, never writes
// shared memory, and never allocates beyond what K's own methods do.
func (t *Trie[K, V]) search(v K) searchResult[K, V] {
	var r searchResult[K, V]
	n := t.root.Load()
	for !n.leaf && n.label.Len() < v.Len() && n.label.IsPrefixOf(v) {
		r.gp, r.gpInfo = r.p, r.pInfo
		r.p, r.pInfo = n, n.info.Load()
		n = r.p.child[v.Bit(r.p.label.Len())].Load()
	}
	r.node = n
	if n.leaf && !t.skipRmvdCheck {
		r.rmvd = logicallyRemoved(n.info.Load())
	}
	return r
}

// logicallyRemoved implements lines 122-124: a leaf whose info field holds
// the Flag of a general-case replace is logically removed once that
// replace's first child CAS has happened, which is detectable by the old
// child no longer being a child of pNode[0] (Lemma 41).
func logicallyRemoved[K keys.Key[K], V any](i *desc[K, V]) bool {
	if !i.flagged() {
		return false
	}
	p, old := i.pNode[0], i.oldChild[0]
	return p.child[0].Load() != old && p.child[1].Load() != old
}

// keyInTrie implements lines 125-126.
func keyInTrie[K keys.Key[K], V any](n *node[K, V], v K, rmvd bool) bool {
	return n.leaf && n.label.Equal(v) && !rmvd
}

// Contains reports whether the encoded key v is in the set. It only
// reads shared memory and never performs a CAS (the paper's find, lines
// 72-75).
func (t *Trie[K, V]) Contains(v K) bool {
	r := t.search(v)
	return keyInTrie(r.node, v, r.rmvd)
}

// Load returns the value stored under v, or (zero, false) when v is not
// in the set. Like Contains it is read-only and CAS-free: one descent,
// and the value comes back unboxed straight from the leaf. Leaf values
// are immutable (updates install fresh leaves), so the value returned is
// exactly the one bound to v at the linearization point.
func (t *Trie[K, V]) Load(v K) (V, bool) {
	r := t.search(v)
	if !keyInTrie(r.node, v, r.rmvd) {
		var zero V
		return zero, false
	}
	return r.node.val, true
}

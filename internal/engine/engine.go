// Package engine implements the non-blocking update protocol of
// Shafiei, "Non-blocking Patricia Tries with Replace Operations"
// (ICDCS 2013), exactly once, generic over the key type. A Trie[K, V]
// is a linearizable set of (already encoded) keys K — and, through the
// value payload V carried unboxed on leaves, a linearizable K → V map
// — with
//
//   - a read-only Contains/Load (the paper's find) that performs no CAS
//     and never writes shared memory; it is wait-free whenever K has
//     bounded length (Uint64Key, MortonKey) and lock-free for unbounded
//     keys (Bitstring, the paper's Section VI),
//   - lock-free Insert, Delete and value updates, and
//   - a lock-free Replace(old, new) that removes one key and inserts
//     another atomically at a single linearization point.
//
// Coordination follows the flag/help scheme of Ellen et al. (PODC
// 2010), extended per the paper: every update publishes a descriptor
// (the paper's Flag object) carrying everything helpers need, flags the
// internal nodes whose child pointers it will change (in label order,
// to avoid livelock), performs the child CASes, and unflags the
// survivors. Nodes removed from the trie stay flagged forever, and
// child pointers are only ever swung to freshly allocated nodes, so
// neither info nor child fields can suffer ABA. Memory reclamation is
// the garbage collector's job, exactly as in the paper's Java setting.
//
// The engine is deliberately key-agnostic: everything it needs from K
// is the small keys.Key interface (bit access, length, prefix tests,
// longest common prefix, a total label order) plus the two dummy keys
// bounding the encoded key space, handed to New. The fixed-width trie
// (internal/core), the byte-string trie (internal/strtrie) and the
// Morton-keyed spatial trie (internal/spatial) are thin instantiations;
// a new key space is an encoding plus two dummies, never a fourth copy
// of this protocol.
//
// The hot paths are allocation-lean (see DESIGN.md): values are stored
// unboxed in the leaf, descriptors are built from fixed-size arrays
// that live on the caller's stack, and speculative node construction is
// deferred until the captured info values are known not to belong to a
// conflicting update. The one allocation that must never be optimized
// away is the fresh Unflag written by every unflag CAS: reusing Unflag
// objects would let a node's info field repeat a value, re-opening the
// ABA window the paper closes.
package engine

import (
	"sync"
	"sync/atomic"

	"nbtrie/internal/keys"
)

// node is the paper's Node type. Leaves and internal nodes share one
// struct: a node is a leaf iff leaf is true, in which case its child
// pointers are never set. The label is immutable after construction;
// leaf labels are full-length encoded keys, internal labels proper
// prefixes of them.
type node[K keys.Key[K], V any] struct {
	label K
	leaf  bool

	// gen is the snapshot generation the node was created in, immutable
	// after construction (see snapshot.go). Internal nodes belonging to a
	// generation older than the current root's must be copied into the
	// current generation before an update may flag them or swing their
	// child pointers — that copy-on-write discipline is what freezes the
	// structure reachable from a snapshot's root. Leaf gens are never
	// consulted: leaves are structurally immutable, and the one mutation
	// they can suffer (a general-case replace storing its Flag into the
	// removed leaf's info) is filtered generationally through the Flag's
	// pNode[0].gen instead (see Snapshot.removed).
	gen uint64

	// val is the value payload of a leaf, stored unboxed (zero for
	// internal nodes; set views instantiate V = struct{}, which occupies
	// no space at all). Like the label it is immutable after
	// construction: a value update installs a fresh leaf through the
	// same child-CAS path as every other update, so the no-ABA argument
	// — child pointers are only ever swung to freshly allocated nodes —
	// is untouched, and readers never observe a half-written value.
	val V

	// info stores a pointer to the descriptor of the update operating on
	// this node (a Flag object), or a fresh unflag descriptor when no
	// update is in progress. It is never nil: the paper uses allocated
	// Unflag objects rather than null precisely so that info values never
	// repeat and flag CASes cannot suffer ABA.
	info atomic.Pointer[desc[K, V]]

	// child holds the left (0) and right (1) children of a binary
	// internal node (trie span 1, the paper's layout). Keeping the two
	// slots inline — rather than always using ext — keeps a binary
	// internal node to one allocation, preserving the pinned allocs/op
	// budgets of the s=1 instantiations exactly.
	child [2]atomic.Pointer[node[K, V]]

	// ext holds the 2^s child slots of a wide internal node (trie span
	// s > 1), nil for binary nodes and leaves; a node self-describes its
	// fanout through it. Unoccupied slots are nil. Empty slots are never
	// CASed in place — nil repeats as an expected value, which would
	// re-open the ABA window — so filling or clearing a slot always
	// builds a fresh copy of the whole node and swings the parent's (or
	// the root) pointer instead; see copyNodeSet.
	ext []atomic.Pointer[node[K, V]]
}

// fanout returns the number of child slots of an internal node.
func (n *node[K, V]) fanout() int {
	if n.ext != nil {
		return len(n.ext)
	}
	return 2
}

// kid returns the i-th child slot.
func (n *node[K, V]) kid(i int) *atomic.Pointer[node[K, V]] {
	if n.ext != nil {
		return &n.ext[i]
	}
	return &n.child[i]
}

// census counts n's non-nil children and returns the last one found
// outside slot skip (the lone sibling when the count is 2). Like every
// child read feeding a copy or contraction, the result is certified by
// the flag CAS on n: a torn census implies n's info changed and the
// attempt dies at flagging (Lemma 31).
func (n *node[K, V]) census(skip int) (live int, sib *node[K, V]) {
	for j := 0; j < n.fanout(); j++ {
		if c := n.kid(j).Load(); c != nil {
			live++
			if j != skip {
				sib = c
			}
		}
	}
	return live, sib
}

// newLeaf returns a leaf node with the given full-length label, a zero
// value payload and a fresh unflag descriptor.
func newLeaf[K keys.Key[K], V any](label K) *node[K, V] {
	var zero V
	return newLeafVal(label, zero)
}

// newLeafVal returns a leaf node carrying a value payload.
func newLeafVal[K keys.Key[K], V any](label K, val V) *node[K, V] {
	n := &node[K, V]{label: label, leaf: true, val: val}
	n.info.Store(newUnflag[K, V]())
	return n
}

// newInternal returns an internal node with the given label, children and
// snapshot generation. The children must already be ordered: left's bit at
// the label length is 0.
func newInternal[K keys.Key[K], V any](label K, left, right *node[K, V], gen uint64) *node[K, V] {
	n := &node[K, V]{label: label, gen: gen}
	n.info.Store(newUnflag[K, V]())
	n.child[0].Store(left)
	n.child[1].Store(right)
	return n
}

// newNode returns an empty internal node of the trie's fanout with the
// given label and generation; the caller stores the children.
func (t *Trie[K, V]) newNode(label K, gen uint64) *node[K, V] {
	n := &node[K, V]{label: label, gen: gen}
	n.info.Store(newUnflag[K, V]())
	if t.span > 1 {
		n.ext = make([]atomic.Pointer[node[K, V]], 1<<t.span)
	}
	return n
}

// copyNode returns a fresh copy of n stamped with the given generation
// (the paper's "new copy of node", lines 26 and 52). For an internal node
// the children are read now; the caller must have read n's info field
// beforehand, which — per Lemma 31 — guarantees the children cannot change
// between this copy and the child CAS that installs it, so the copy is
// faithful when it becomes reachable.
func (t *Trie[K, V]) copyNode(n *node[K, V], gen uint64) *node[K, V] {
	return t.copyNodeSet(n, gen, -1, nil, -1, nil)
}

// copyNodeSet is copyNode with up to two slot overrides applied to the
// copy: slot slotA receives a (clearing the slot when a is nil), likewise
// slotB/b; a slot of -1 means no override. It is the single constructor
// behind every wide-node mutation — slot fills, slot clears, and the
// fused replace cases — so the fresh-copy-per-update discipline that
// keeps child CASes ABA-free has one implementation to audit. The same
// Lemma 31 contract as copyNode applies: the caller must have captured
// n's info before calling and must flag n with that capture, so a torn
// copy can never be installed.
func (t *Trie[K, V]) copyNodeSet(n *node[K, V], gen uint64, slotA int, a *node[K, V], slotB int, b *node[K, V]) *node[K, V] {
	if n.leaf {
		return newLeafVal(n.label, n.val)
	}
	c := t.newNode(n.label, gen)
	for j := 0; j < n.fanout(); j++ {
		c.kid(j).Store(n.kid(j).Load())
	}
	if slotA >= 0 {
		c.kid(slotA).Store(a)
	}
	if slotB >= 0 {
		c.kid(slotB).Store(b)
	}
	return c
}

// descKind discriminates the two Info subtypes of the paper.
type descKind uint8

const (
	kindUnflag descKind = iota + 1 // no update in progress at the node
	kindFlag                       // an update owns the node
)

// desc is the paper's Info object. A desc with kind == kindUnflag uses no
// other field; a fresh unflag is allocated for every unflagging so that a
// node's info field never repeats a value. A desc with kind == kindFlag
// describes one update operation completely, so that any process reading
// it can finish the update (help).
//
// Fixed-size arrays with explicit lengths keep each descriptor to a single
// allocation; an update flags at most four internal nodes and changes at
// most two child pointers (the replace general case). newDesc receives
// the same fixed-size arrays as stack values, so a failed attempt
// allocates nothing at all.
type desc[K keys.Key[K], V any] struct {
	kind descKind

	nFlag   uint8 // entries used in flag/oldInfo
	nUnflag uint8 // entries used in unflag
	nPNode  uint8 // entries used in pNode/oldChild/newChild

	// flag lists the internal nodes to flag, sorted by label; oldInfo[i]
	// is the expected prior value of flag[i].info for the flag CAS.
	flag    [4]*node[K, V]
	oldInfo [4]*desc[K, V]

	// unflag lists the flagged nodes that remain in the trie and must be
	// unflagged once the child CASes are done. Nodes in flag but not in
	// unflag are removed by the update and stay flagged ("marked").
	unflag [2]*node[K, V]

	// For each i, the update CASes the appropriate child pointer of
	// pNode[i] from oldChild[i] to newChild[i].
	pNode    [2]*node[K, V]
	oldChild [2]*node[K, V]
	newChild [2]*node[K, V]

	// rmvLeaf, when non-nil, is the leaf holding the replaced key of a
	// general-case replace. It is flagged (plain store) after all flag
	// CASes succeed and before the first child CAS; searches reaching it
	// afterwards use logicallyRemoved to decide whether the key is gone.
	rmvLeaf *node[K, V]

	// flagDone is set once every node in flag was flagged successfully;
	// helpers use it to distinguish "the update already happened and the
	// node was unflagged" from "flagging failed, back off" (lines 93-106).
	flagDone atomic.Bool
}

// newUnflag allocates a fresh Unflag descriptor. The allocation is
// load-bearing: each unflag CAS must install a pointer the node's info
// field has never held before, or a delayed flag CAS comparing against a
// recycled Unflag could succeed long after its update was decided (ABA).
// Do not pool or intern these.
func newUnflag[K keys.Key[K], V any]() *desc[K, V] { return &desc[K, V]{kind: kindUnflag} }

// flagged reports whether d is a Flag descriptor.
func (d *desc[K, V]) flagged() bool { return d.kind == kindFlag }

// Trie is the shared non-blocking Patricia trie over encoded keys K with
// unboxed value payloads V. All methods are safe for concurrent use by
// any number of goroutines without external synchronization. Key
// encoding and range validation live in the instantiating package; the
// engine only ever sees full-length encoded keys strictly between the
// two dummies.
type Trie[K keys.Key[K], V any] struct {
	// root is swapped wholesale by Snapshot (a fresh copy carrying the
	// next generation), so it is an atomic pointer; everything below it
	// is reached through the usual child pointers. Readers may load
	// either side of a racing swap — both are valid linearizable views.
	root atomic.Pointer[node[K, V]]

	// snapMu is the snapshot barrier. Every mutating operation holds the
	// read side for its whole invocation (search, retries, helping);
	// Snapshot takes the write side just long enough to swap in a fresh
	// root with a bumped generation and read the entry count. Draining
	// the read side guarantees no in-flight update — whose flag targets
	// were validated against the previous generation — can mutate the
	// structure the snapshot captured after Snapshot returns; updates
	// that start afterwards see the new generation and copy-on-write any
	// stale internal node before touching it (see snapshot.go). Reads
	// never take the lock: Load/Contains/iteration stay CAS- and
	// lock-free.
	snapMu sync.RWMutex

	dummyMin, dummyMax K

	// count tracks the number of live user keys for Len. It is bumped by
	// the *initiating* goroutine of a successful insert or delete — never
	// by helpers, so each successful operation is counted exactly once —
	// strictly after the operation's linearization point (the child CAS
	// inside help). Replace and value overwrites do not change the key
	// count and never touch it. Consequences: Len is exact whenever no
	// mutation is in flight, and under concurrency it lags the linearized
	// state by at most the number of in-flight mutations (each op's bump
	// lands within its own invocation window, so Len is always a value
	// the set held at some point inside the read's own window of
	// concurrent operations).
	count atomic.Int64

	// skipRmvdCheck applies the paper's Section V optimization for
	// workloads without replace operations: the search does not inspect
	// leaf info fields for logical removal. Replace must not be used on
	// such a trie.
	skipRmvdCheck bool

	// stats is the trie's contention-counter block (see stats.go). By
	// value so each trie — and hence each shard of a sharded map — owns
	// its own cache-line-padded counters with no pointer chase on the
	// record paths.
	stats Stats

	// span is the digit width s in bits: internal nodes have 2^span
	// child slots and every level of the trie resolves span key bits,
	// cutting expected depth span-fold. span 1 is exactly the paper's
	// binary trie. Internal labels are always a whole number of digits
	// long (CommonDigitPrefix floors to a digit boundary); the digit at
	// the very bottom of a key whose length is not a multiple of span is
	// partial, occupying only the low 2^r slots of its node.
	//
	// Soundness constraint on instantiations: digit extraction must
	// assign distinct slots to distinct keys under a shared node, which
	// holds when all keys have one fixed length (core, spatial) or all
	// lengths are multiples of span. Variable-length Bitstring keys
	// (lengths 16n+2) violate it for span 4 — a 2-bit tail digit "11"
	// and a 4-bit digit "0011" would share slot 3 — so strtrie stays at
	// span 1.
	span uint32
}

// Option configures a Trie.
type Option[K keys.Key[K], V any] func(*Trie[K, V])

// WithoutReplace applies the paper's Section V optimization ("we
// eliminated the rmvd variable in search operations"): searches skip the
// logical-removal check that only replace operations can trigger. Calling
// Replace on a trie built with this option panics.
func WithoutReplace[K keys.Key[K], V any]() Option[K, V] {
	return func(t *Trie[K, V]) { t.skipRmvdCheck = true }
}

// WithSpan sets the digit width s: internal nodes grow 2^s child slots
// (a span-4 node's 16 pointers fill two cache lines) and every level
// resolves s key bits. s must be in [1, 6]; 1 is the paper's binary
// trie. See the span field for the key-length soundness constraint.
func WithSpan[K keys.Key[K], V any](s uint32) Option[K, V] {
	if s < 1 || s > 6 {
		panic("engine: span must be in [1, 6]")
	}
	return func(t *Trie[K, V]) { t.span = s }
}

// New returns an empty trie anchored by the two dummy leaves, which must
// bound every encoded key the instantiation will ever pass in. The zero
// value of K must be the empty string; it labels the root.
func New[K keys.Key[K], V any](dummyMin, dummyMax K, opts ...Option[K, V]) *Trie[K, V] {
	var empty K
	t := &Trie[K, V]{dummyMin: dummyMin, dummyMax: dummyMax, span: 1}
	for _, o := range opts {
		o(t)
	}
	// The root is built after the options so it gets the configured
	// fanout. The dummies always occupy distinct slots: their first bits
	// differ, so their first digits do too.
	r := t.newNode(empty, 0)
	r.kid(t.slotOf(dummyMin, 0)).Store(newLeaf[K, V](dummyMin))
	r.kid(t.slotOf(dummyMax, 0)).Store(newLeaf[K, V](dummyMax))
	t.root.Store(r)
	return t
}

// slotOf returns the child-slot index the key v selects at an internal
// node whose label is pos bits long. pos is always a whole number of
// digits (internal labels are digit-aligned) and pos < v.Len(). The
// span-1 branch keeps the binary instantiations on the one-shift Bit
// path rather than paying Digit's division by a non-constant.
func (t *Trie[K, V]) slotOf(v K, pos uint32) int {
	if t.span == 1 {
		return v.Bit(pos)
	}
	return v.Digit(pos/t.span, t.span)
}

// curGen returns the current snapshot generation — the generation of the
// current root. Mutating operations read it under the snapMu read lock,
// where it cannot change for the duration of the operation.
func (t *Trie[K, V]) curGen() uint64 { return t.root.Load().gen }

// searchResult carries the paper's 6-tuple ⟨gp, p, node, gpInfo, pInfo,
// rmvd⟩ returned by search.
type searchResult[K keys.Key[K], V any] struct {
	gp, p, node   *node[K, V]
	gpInfo, pInfo *desc[K, V]
	rmvd          bool
}

// search locates the encoded key v, per lines 76-85. It starts at the
// root and descends by the bit of v at each node's label length, stopping
// at a leaf or at an internal node whose label is no longer a proper
// prefix of v. Labels strictly lengthen along any path (Invariant 7), so
// the loop runs at most |v| times: wait-free for bounded key types,
// lock-free (bounded by the key's own length plus concurrent
// restructuring) for unbounded ones. It performs no CAS, never writes
// shared memory, and never allocates beyond what K's own methods do.
func (t *Trie[K, V]) search(v K) searchResult[K, V] {
	var r searchResult[K, V]
	n := t.root.Load()
	for n != nil && !n.leaf && n.label.Len() < v.Len() && n.label.IsPrefixOf(v) {
		r.gp, r.gpInfo = r.p, r.pInfo
		r.p, r.pInfo = n, n.info.Load()
		n = r.p.kid(t.slotOf(v, r.p.label.Len())).Load()
	}
	// r.node == nil means the descent hit an empty slot of r.p (wide
	// nodes only): the key is absent, and an insert fills the slot by
	// replacing r.p wholesale under r.gp.
	r.node = n
	if n != nil && n.leaf && !t.skipRmvdCheck {
		r.rmvd = t.logicallyRemoved(n.info.Load())
	}
	return r
}

// logicallyRemoved implements lines 122-124: a leaf whose info field holds
// the Flag of a general-case replace is logically removed once that
// replace's first child CAS has happened, which is detectable by the old
// child no longer being a child of pNode[0] (Lemma 41). A nil pNode[0] is
// the root-CAS sentinel: the replace's insert half replaced the root node
// itself, so the check is against the trie's root pointer.
func (t *Trie[K, V]) logicallyRemoved(i *desc[K, V]) bool {
	if !i.flagged() {
		return false
	}
	p, old := i.pNode[0], i.oldChild[0]
	if p == nil {
		return t.root.Load() != old
	}
	for j := 0; j < p.fanout(); j++ {
		if p.kid(j).Load() == old {
			return false
		}
	}
	return true
}

// keyInTrie implements lines 125-126. A nil n (empty slot) is absent.
func keyInTrie[K keys.Key[K], V any](n *node[K, V], v K, rmvd bool) bool {
	return n != nil && n.leaf && n.label.Equal(v) && !rmvd
}

// Contains reports whether the encoded key v is in the set. It only
// reads shared memory and never performs a CAS (the paper's find, lines
// 72-75).
func (t *Trie[K, V]) Contains(v K) bool {
	r := t.search(v)
	return keyInTrie(r.node, v, r.rmvd)
}

// Load returns the value stored under v, or (zero, false) when v is not
// in the set. Like Contains it is read-only and CAS-free: one descent,
// and the value comes back unboxed straight from the leaf. Leaf values
// are immutable (updates install fresh leaves), so the value returned is
// exactly the one bound to v at the linearization point.
func (t *Trie[K, V]) Load(v K) (V, bool) {
	r := t.search(v)
	if !keyInTrie(r.node, v, r.rmvd) {
		var zero V
		return zero, false
	}
	return r.node.val, true
}

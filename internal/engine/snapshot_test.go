package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"nbtrie/internal/keys"
)

// Snapshot battery: frozen-view semantics, the generation-aware removal
// check, O(1) cost pins, and prefix-consistency under concurrent
// writers. These run once here, against the shared engine, for every
// instantiation in the repository.

func (tt testTrie) Snapshot() *Snapshot[keys.Uint64Key, any] { return tt.Trie.Snapshot() }

func snapKeys(s *Snapshot[keys.Uint64Key, any], width uint32) []uint64 {
	var out []uint64
	var zero keys.Uint64Key
	s.AscendKV(zero, func(k keys.Uint64Key, _ any) bool {
		out = append(out, keys.DecodeUint64(k, width))
		return true
	})
	return out
}

// TestSnapshotFrozenView takes a snapshot and then mutates the live trie
// through every update path (insert, delete, overwrite, replace): the
// snapshot must keep answering with the state at the snapshot point
// while the live trie moves on, and the live trie must stay valid.
func TestSnapshotFrozenView(t *testing.T) {
	tr := mustNew(t, 16)
	for k := uint64(0); k < 200; k++ {
		tr.Store(k, k)
	}
	s := tr.Snapshot()
	if s.Len() != 200 {
		t.Fatalf("snapshot Len = %d, want 200", s.Len())
	}

	// Mutate the live trie heavily after the snapshot.
	for k := uint64(0); k < 100; k++ {
		tr.Delete(k) // remove the low half
	}
	for k := uint64(200); k < 300; k++ {
		tr.Store(k, k) // insert a new range
	}
	for k := uint64(100); k < 150; k++ {
		tr.Store(k, k+1000) // overwrite values
	}
	if !tr.Trie.Replace(tr.enc(150), tr.enc(1150)) {
		t.Fatal("replace must succeed on a live key")
	}

	// The snapshot still shows exactly the pre-mutation state.
	for k := uint64(0); k < 200; k++ {
		v, ok := s.Load(tr.enc(k))
		if !ok || v.(uint64) != k {
			t.Fatalf("snapshot lost key %d (ok=%v v=%v)", k, ok, v)
		}
	}
	if s.Contains(tr.enc(250)) || s.Contains(tr.enc(1150)) {
		t.Error("snapshot sees post-snapshot inserts")
	}
	got := snapKeys(s, 16)
	if len(got) != 200 {
		t.Fatalf("snapshot Ascend yielded %d keys, want 200", len(got))
	}
	for i, k := range got {
		if k != uint64(i) {
			t.Fatalf("snapshot Ascend out of order or wrong at %d: %d", i, k)
		}
	}

	// And the live trie shows only the post-mutation state.
	if tr.Contains(50) || !tr.Contains(250) || tr.Contains(150) || !tr.Contains(1150) {
		t.Error("live trie state wrong after mutations")
	}
	if v, _ := tr.Load(120); v.(uint64) != 1120 {
		t.Error("live overwrite lost")
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

// TestSnapshotGenerationAwareRemoval pins the one subtle sharing case: a
// general-case replace after the snapshot plants its Flag in the info
// field of a leaf the snapshot still reaches. The snapshot's removal
// check must see that the Flag belongs to a newer generation and keep
// the leaf live in its view.
func TestSnapshotGenerationAwareRemoval(t *testing.T) {
	tr := mustNew(t, 16)
	// Spread keys so Replace(5, 40000) hits the general case (disjoint
	// parts of the trie).
	for _, k := range []uint64{1, 5, 9, 33000, 41000, 49000} {
		tr.Insert(k)
	}
	s := tr.Snapshot()
	if !tr.Replace(5, 40000) {
		t.Fatal("replace must succeed")
	}
	if tr.Contains(5) || !tr.Contains(40000) {
		t.Fatal("live trie must reflect the replace")
	}
	if !s.Contains(tr.enc(5)) {
		t.Error("snapshot must still contain the replaced-away key: its removal is from a newer generation")
	}
	if s.Contains(tr.enc(40000)) {
		t.Error("snapshot must not contain the post-snapshot key")
	}
	keys := snapKeys(s, 16)
	if len(keys) != 6 || keys[1] != 5 {
		t.Errorf("snapshot Ascend sees %v, want the six pre-replace keys", keys)
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

// TestSnapshotO1 pins Snapshot's cost as independent of map size: the
// allocation count must be identical for a 100-key and a 100_000-key
// trie, and tiny.
func TestSnapshotO1(t *testing.T) {
	small := mustNew(t, 32)
	for k := uint64(0); k < 100; k++ {
		small.Insert(k)
	}
	big := mustNew(t, 32)
	n := uint64(100_000)
	if testing.Short() {
		n = 10_000
	}
	for k := uint64(0); k < n; k++ {
		big.Insert(k)
	}
	allocsSmall := testing.AllocsPerRun(100, func() { small.Snapshot() })
	allocsBig := testing.AllocsPerRun(100, func() { big.Snapshot() })
	if allocsSmall != allocsBig {
		t.Errorf("Snapshot allocs depend on size: %.0f (100 keys) vs %.0f (%d keys)", allocsSmall, allocsBig, n)
	}
	if allocsBig > 3 {
		t.Errorf("Snapshot allocates %.0f objects; want <= 3 (root copy + snapshot header)", allocsBig)
	}
}

// TestSnapshotReadAllocsPinned keeps the live read path at zero
// allocations while snapshots exist and copy-on-write renewal churns the
// upper trie: snapshots must not tax readers.
func TestSnapshotReadAllocsPinned(t *testing.T) {
	tr := mustNew(t, 32)
	for k := uint64(0); k < 4096; k++ {
		tr.Store(k, k)
	}
	s := tr.Snapshot()
	// Force renewal work: mutations after the snapshot rebuild stale paths.
	for k := uint64(0); k < 4096; k += 7 {
		tr.Store(k, k+1)
	}
	probe := tr.enc(1234)
	if a := testing.AllocsPerRun(200, func() { tr.Trie.Contains(probe) }); a != 0 {
		t.Errorf("live Contains allocates %.1f/op with an active snapshot; want 0", a)
	}
	if a := testing.AllocsPerRun(200, func() { tr.Trie.Load(probe) }); a != 0 {
		t.Errorf("live Load allocates %.1f/op with an active snapshot; want 0", a)
	}
	if a := testing.AllocsPerRun(200, func() { s.Contains(probe) }); a != 0 {
		t.Errorf("snapshot Contains allocates %.1f/op; want 0", a)
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

// TestSnapshotPrefixConsistency is the linearizability check: writers
// insert strictly ascending private sequences while snapshots are taken
// concurrently. Every snapshot must show, for every writer, a prefix of
// that writer's sequence (an insert acknowledged before the snapshot is
// in it; one acknowledged after is not; nothing in between is skipped),
// and two walks of the same snapshot must agree exactly.
func TestSnapshotPrefixConsistency(t *testing.T) {
	const writers = 4
	iters := 3000
	if testing.Short() {
		iters = 500
	}
	tr := mustNew(t, 32)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w uint64) {
			defer wg.Done()
			base := w << 20
			for i := 0; i < iters && !stop.Load(); i++ {
				tr.Insert(base + uint64(i))
			}
		}(uint64(w))
	}

	for round := 0; round < 20; round++ {
		s := tr.Snapshot()
		counts := make([]uint64, writers)
		seen := 0
		prev := int64(-1)
		var zero keys.Uint64Key
		ok := true
		s.AscendKV(zero, func(k keys.Uint64Key, _ any) bool {
			u := keys.DecodeUint64(k, 32)
			if int64(u) <= prev {
				t.Errorf("snapshot Ascend not strictly ascending: %d after %d", u, prev)
				ok = false
				return false
			}
			prev = int64(u)
			w := u >> 20
			i := u & (1<<20 - 1)
			if i != counts[w] {
				t.Errorf("writer %d: key %d appears but %d is missing — not a prefix", w, i, counts[w])
				ok = false
				return false
			}
			counts[w]++
			seen++
			return true
		})
		if !ok {
			break
		}
		if seen != s.Len() {
			t.Errorf("snapshot Len() = %d but Ascend yielded %d", s.Len(), seen)
		}
		// A second walk of the same snapshot must agree exactly even
		// though writers are still running: the view is frozen.
		again := 0
		s.AscendKV(zero, func(keys.Uint64Key, any) bool { again++; return true })
		if again != seen {
			t.Errorf("snapshot not frozen: first walk %d keys, second %d", seen, again)
		}
		runtime.Gosched()
	}
	stop.Store(true)
	wg.Wait()
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

// TestSnapshotQuickCheckAgainstModel drives random mutations with a
// snapshot taken mid-sequence and compares both the final live trie and
// the snapshot against model maps.
func TestSnapshotQuickCheckAgainstModel(t *testing.T) {
	tr := mustNew(t, 16)
	model := map[uint64]uint64{}
	rnd := func(i int) uint64 { return uint64((i*2654435761 + 12345) % 5000) }
	for i := 0; i < 4000; i++ {
		k := rnd(i)
		if i%3 == 0 {
			tr.Trie.Delete(tr.enc(k))
			delete(model, k)
		} else {
			tr.Store(k, k+uint64(i))
			model[k] = k + uint64(i)
		}
	}
	snapModel := make(map[uint64]uint64, len(model))
	for k, v := range model {
		snapModel[k] = v
	}
	s := tr.Snapshot()
	for i := 4000; i < 8000; i++ {
		k := rnd(i)
		if i%3 == 0 {
			tr.Trie.Delete(tr.enc(k))
			delete(model, k)
		} else {
			tr.Store(k, k+uint64(i))
			model[k] = k + uint64(i)
		}
	}
	if s.Len() != len(snapModel) {
		t.Errorf("snapshot Len = %d, model has %d", s.Len(), len(snapModel))
	}
	for k, want := range snapModel {
		v, ok := s.Load(tr.enc(k))
		if !ok || v.(uint64) != want {
			t.Fatalf("snapshot key %d: got (%v, %v), want %d", k, v, ok, want)
		}
	}
	walked := 0
	var zero keys.Uint64Key
	s.AscendKV(zero, func(k keys.Uint64Key, v any) bool {
		u := keys.DecodeUint64(k, 16)
		if want, ok := snapModel[u]; !ok || v.(uint64) != want {
			t.Fatalf("snapshot Ascend yields %d=%v; model says (%v, %v)", u, v, snapModel[u], ok)
		}
		walked++
		return true
	})
	if walked != len(snapModel) {
		t.Errorf("snapshot Ascend walked %d keys, model has %d", walked, len(snapModel))
	}
	if tr.Trie.Len() != len(model) {
		t.Errorf("live Len = %d, model has %d", tr.Trie.Len(), len(model))
	}
	for k, want := range model {
		v, ok := tr.Load(k)
		if !ok || v.(uint64) != want {
			t.Fatalf("live key %d: got (%v, %v), want %d", k, v, ok, want)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

package engine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nbtrie/internal/keys"
)

// White-box tests of the coordination machinery: the help routine's
// backtrack path, newDesc's duplicate handling and ordering, the
// logical-removal predicate, and createNode's conflict helping — the
// paths a happy-path workload rarely exercises deterministically.

// TestHelpBacktracksOnStaleFlag drives help with a descriptor whose
// oldInfo is stale for its second flag target: flagging must fail
// partway, the already-flagged node must be unflagged by the backtrack
// CASes, and help must report failure.
func TestHelpBacktracksOnStaleFlag(t *testing.T) {
	tr := mustNew(t, 8)
	tr.Insert(3)   // encodes with leading 0 bit: left subtree
	tr.Insert(255) // encodes with leading 1 bit: right subtree

	a := tr.root.Load().child[0].Load()
	b := tr.root.Load().child[1].Load()
	if a.leaf || b.leaf {
		t.Fatal("test setup: expected internal children")
	}
	stale := newUnflag[keys.Uint64Key, any]() // never the current info of b
	d := &udesc{kind: kindFlag, nFlag: 2, nUnflag: 2}
	d.flag[0], d.flag[1] = a, b
	d.oldInfo[0], d.oldInfo[1] = a.info.Load(), stale
	d.unflag[0], d.unflag[1] = a, b

	if tr.help(d) {
		t.Fatal("help must fail when a flag CAS cannot succeed")
	}
	if d.flagDone.Load() {
		t.Error("flagDone must stay false on a failed attempt")
	}
	if a.info.Load().flagged() {
		t.Error("backtrack CAS must unflag the first node")
	}
	if b.info.Load().flagged() {
		t.Error("second node must never have been flagged")
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

// TestHelpIsIdempotent re-runs help on an already-completed descriptor:
// every CAS must fail harmlessly and the result stay true.
func TestHelpIsIdempotent(t *testing.T) {
	tr := mustNew(t, 8)
	tr.Insert(7)
	r := tr.search(tr.enc(9))
	nodeInfo := r.node.info.Load()
	newNode := tr.makeInternal(tr.copyNode(r.node, tr.curGen()), newTestLeaf(tr, 9), nodeInfo)
	if newNode == nil {
		t.Fatal("setup: makeInternal failed")
	}
	d := tr.newDesc(
		[4]*unode{r.p}, [4]*udesc{r.pInfo}, 1,
		[2]*unode{r.p}, 1,
		[2]*unode{r.p}, [2]*unode{r.node}, [2]*unode{newNode}, 1,
		nil)
	if d == nil || !tr.help(d) {
		t.Fatal("setup: first help must succeed")
	}
	for i := 0; i < 3; i++ {
		if !tr.help(d) {
			t.Fatal("replayed help must still report success")
		}
	}
	if !tr.Contains(9) || tr.Size() != 2 {
		t.Error("replayed help corrupted the trie")
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

func TestNewDescDuplicateHandling(t *testing.T) {
	tr := mustNew(t, 8)
	tr.Insert(3)
	n := tr.root.Load().child[0].Load()
	info := n.info.Load()

	// Same node twice with the same oldInfo: deduplicated to one entry.
	d := tr.newDesc(
		[4]*unode{n, n}, [4]*udesc{info, info}, 2,
		[2]*unode{n, n}, 2,
		[2]*unode{n}, [2]*unode{nil}, [2]*unode{newTestLeaf(tr, 1)}, 1,
		nil)
	if d == nil {
		t.Fatal("duplicates with equal oldInfo must be accepted")
	}
	if d.nFlag != 1 || d.nUnflag != 1 {
		t.Errorf("dedup left nFlag=%d nUnflag=%d, want 1/1", d.nFlag, d.nUnflag)
	}

	// Same node with different oldInfo: the node changed between reads.
	if tr.newDesc(
		[4]*unode{n, n}, [4]*udesc{info, newUnflag[keys.Uint64Key, any]()}, 2,
		[2]*unode{n}, 1,
		[2]*unode{n}, [2]*unode{nil}, [2]*unode{newTestLeaf(tr, 1)}, 1,
		nil) != nil {
		t.Error("duplicates with different oldInfo must be rejected")
	}

	// A flagged oldInfo: the conflicting update gets helped, nil returned.
	flagged := &udesc{kind: kindFlag}
	if tr.newDesc(
		[4]*unode{n}, [4]*udesc{flagged}, 1,
		[2]*unode{n}, 1,
		[2]*unode{n}, [2]*unode{nil}, [2]*unode{newTestLeaf(tr, 1)}, 1,
		nil) != nil {
		t.Error("flagged oldInfo must be rejected")
	}
}

func TestNewDescSortsByLabel(t *testing.T) {
	tr := mustNew(t, 8)
	for _, k := range []uint64{3, 9, 200, 77} {
		tr.Insert(k)
	}
	// Gather three internal nodes and pass them in reverse label order.
	var internals []*unode
	var collect func(*unode)
	collect = func(n *unode) {
		if n.leaf {
			return
		}
		internals = append(internals, n)
		collect(n.child[0].Load())
		collect(n.child[1].Load())
	}
	collect(tr.root.Load())
	if len(internals) < 3 {
		t.Fatalf("setup: want >=3 internal nodes, got %d", len(internals))
	}
	ns := [4]*unode{internals[2], internals[0], internals[1]}
	is := [4]*udesc{ns[0].info.Load(), ns[1].info.Load(), ns[2].info.Load()}
	d := tr.newDesc(ns, is, 3,
		[2]*unode{ns[0]}, 1,
		[2]*unode{ns[0]}, [2]*unode{nil}, [2]*unode{newTestLeaf(tr, 1)}, 1,
		nil)
	if d == nil {
		t.Fatal("newDesc failed")
	}
	for i := 1; i < int(d.nFlag); i++ {
		if d.flag[i-1].label.Compare(d.flag[i].label) >= 0 {
			t.Fatalf("flag array not sorted at %d", i)
		}
		// The oldInfo permutation must follow its node.
		if d.flag[i].info.Load() != d.oldInfo[i] {
			t.Fatalf("oldInfo not permuted with flag at %d", i)
		}
	}
}

func TestLogicallyRemovedPredicate(t *testing.T) {
	tr := mustNew(t, 8)
	tr.Insert(5)
	leaf5 := tr.search(tr.enc(5)).node

	if tr.logicallyRemoved(leaf5.info.Load()) {
		t.Error("unflagged leaf must not be logically removed")
	}
	// Fabricate a replace-style flag whose pNode still points at
	// oldChild: not yet removed.
	p := tr.search(tr.enc(5)).p
	d := &udesc{kind: kindFlag, nPNode: 1}
	d.pNode[0] = p
	d.oldChild[0] = leaf5
	if tr.logicallyRemoved(d) {
		t.Error("leaf still linked under pNode[0] is not removed")
	}
	// Once oldChild is no longer a child of pNode[0], it is removed.
	d.oldChild[0] = newTestLeaf(tr, 9)
	if !tr.logicallyRemoved(d) {
		t.Error("leaf unlinked from pNode[0] must report removed")
	}
}

func TestMakeInternalConflictHelps(t *testing.T) {
	tr := mustNew(t, 8)
	a := newTestLeaf(tr, 5)
	b := newTestLeaf(tr, 5) // identical labels: prefix conflict

	if tr.makeInternal(a, b, nil) != nil {
		t.Error("equal labels must yield nil")
	}
	// With a completed Flag as info, makeInternal helps it (idempotent
	// re-help) and still returns nil.
	tr.Insert(7)
	r := tr.search(tr.enc(9))
	nodeInfo := r.node.info.Load()
	nn := tr.makeInternal(tr.copyNode(r.node, tr.curGen()), newTestLeaf(tr, 9), nodeInfo)
	d := tr.newDesc(
		[4]*unode{r.p}, [4]*udesc{r.pInfo}, 1,
		[2]*unode{r.p}, 1,
		[2]*unode{r.p}, [2]*unode{r.node}, [2]*unode{nn}, 1,
		nil)
	tr.help(d)
	if tr.makeInternal(a, b, d) != nil {
		t.Error("conflict with flagged info must still yield nil")
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

// TestTryDeleteRootChildDefensive pins the defensive ordering in
// tryDelete: the gp == nil branch must be taken before anything is read
// through the search result. The situation cannot arise through Delete —
// a leaf directly under the root is necessarily one of the two permanent
// dummies (the 0-prefix and 1-prefix subtrees always contain them), and
// dummy labels never equal an encoded user key, so keyInTrie rejects the
// position first — but tryDelete must still fail closed when handed such
// a result, leaving the trie untouched.
func TestTryDeleteRootChildDefensive(t *testing.T) {
	tr := mustNew(t, 8)
	tr.Insert(7)

	dummy := tr.root.Load().child[0].Load()
	for !dummy.leaf {
		dummy = dummy.child[0].Load()
	}
	if !dummy.label.Equal(keys.Uint64DummyMin(tr.width)) {
		t.Fatal("setup: leftmost leaf should be the 0^ℓ dummy")
	}
	r := searchResult[keys.Uint64Key, any]{
		p:     tr.root.Load(),
		pInfo: tr.root.Load().info.Load(),
		node:  dummy,
		// gp and gpInfo deliberately nil: the root has no parent.
	}
	if tr.tryDelete(dummy.label, r) {
		t.Error("tryDelete with nil gp must refuse")
	}
	if !tr.Contains(7) || tr.Size() != 1 {
		t.Error("defensive tryDelete must not disturb the trie")
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

// TestOrderedSkipsLogicallyRemoved: a leaf parked as rmvLeaf of a
// completed replace (flag stays forever) must never surface from ordered
// queries even when it is artificially kept reachable — fabricate the
// state directly.
func TestOrderedSkipsLogicallyRemoved(t *testing.T) {
	tr := mustNew(t, 8)
	tr.Insert(50)
	leaf := tr.search(tr.enc(50)).node
	d := &udesc{kind: kindFlag, nPNode: 1}
	d.pNode[0] = tr.root.Load()
	d.oldChild[0] = newTestLeaf(tr, 1) // not a child: "removed"
	leaf.info.Store(d)
	if _, ok := tr.Trie.Ceiling(tr.enc(0)); ok {
		t.Error("logically removed leaf surfaced from Ceiling")
	}
	if _, ok := tr.Trie.Floor(tr.enc(255)); ok {
		t.Error("logically removed leaf surfaced from Floor")
	}
	n := 0
	tr.AscendKV(keys.Uint64Key{}, func(keys.Uint64Key, any) bool { n++; return true })
	if n != 0 {
		t.Error("logically removed leaf surfaced from AscendKV")
	}
}

// TestValidateDetectsCorruption checks that the invariant checker is not
// vacuous, by corrupting a trie in ways the algorithm can never produce.
func TestValidateDetectsCorruption(t *testing.T) {
	tr := mustNew(t, 4)
	tr.Insert(3)

	// Swap the root's children: branch bits become wrong.
	c0, c1 := tr.root.Load().child[0].Load(), tr.root.Load().child[1].Load()
	tr.root.Load().child[0].Store(c1)
	tr.root.Load().child[1].Store(c0)
	if tr.Validate() == nil {
		t.Error("Validate must detect swapped children")
	}
	tr.root.Load().child[0].Store(c0)
	tr.root.Load().child[1].Store(c1)
	if err := tr.Validate(); err != nil {
		t.Fatalf("restored trie should validate: %v", err)
	}

	// A reachable flagged node at quiescence is a violation.
	d := &udesc{kind: kindFlag}
	old := c0.info.Load()
	c0.info.Store(d)
	if tr.Validate() == nil {
		t.Error("Validate must detect reachable flagged node")
	}
	c0.info.Store(old)

	// The extra (instantiation-supplied) check is consulted too.
	errSentinel := tr.Trie.Validate(func(label keys.Uint64Key, leaf bool) error {
		if leaf {
			return errFake
		}
		return nil
	})
	if errSentinel != errFake {
		t.Errorf("Validate must surface the extra check's error, got %v", errSentinel)
	}
}

var errFake = errFakeType{}

type errFakeType struct{}

func (errFakeType) Error() string { return "fake instantiation error" }

// TestQuickOpSequences is the testing/quick property test over random
// operation sequences: the trie must agree with a map oracle on every
// result and on the final contents.
func TestQuickOpSequences(t *testing.T) {
	type op struct {
		Kind byte
		K    uint16
		K2   uint16
	}
	f := func(ops []op) bool {
		tr := mustNew(t, 16)
		oracle := make(map[uint64]bool)
		for _, o := range ops {
			k, k2 := uint64(o.K), uint64(o.K2)
			switch o.Kind % 4 {
			case 0:
				if tr.Insert(k) != !oracle[k] {
					return false
				}
				oracle[k] = true
			case 1:
				if tr.Delete(k) != oracle[k] {
					return false
				}
				delete(oracle, k)
			case 2:
				if tr.Contains(k) != oracle[k] {
					return false
				}
			case 3:
				want := oracle[k] && !oracle[k2] && k != k2
				if tr.Replace(k, k2) != want {
					return false
				}
				if want {
					delete(oracle, k)
					oracle[k2] = true
				}
			}
		}
		if tr.Validate() != nil {
			return false
		}
		if tr.Size() != len(oracle) {
			return false
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 300,
		Rand:     rand.New(rand.NewSource(11)),
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

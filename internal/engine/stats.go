package engine

import "nbtrie/internal/obs"

// Stats is the trie's contention-counter block, embedded by value in every
// Trie so that per-shard instantiations (internal/sharded) get per-shard
// striping for free: each shard's counters live on that shard's Trie, and
// the aggregate is a snapshot merge. All record paths are wait-free atomic
// adds (see internal/obs) and never allocate, so instrumented operations
// keep exactly the progress and allocs/op guarantees of the uninstrumented
// protocol. The read-only search path (Contains/Load) is deliberately NOT
// instrumented — it performs no shared-memory writes today, and a counter
// bump would be its first.
//
// Helper-vs-initiator semantics: Help counts every help() entry, whether
// the caller is the update's own process or a helper; HelpAssist counts
// only the assist sites — newDesc, helpConflict and makeInternal helping a
// *conflicting* update's descriptor — so it is zero on an uncontended trie
// and strictly positive whenever one operation finished (part of) another's
// work. ChildCASFail counts child/root CASes inside help that found the
// pointer already swung (a racing helper got there first); FlagBacktrack
// counts help invocations that failed flagging and unwound. OpRetries
// counts retry-loop iterations past the first in every mutating operation.
type Stats struct {
	Help             obs.Counter // help() invocations, initiators and helpers alike
	HelpAssist       obs.Counter // helping a conflicting op's descriptor (0 when uncontended)
	ChildCASFail     obs.Counter // child/root CAS in help lost to a racing helper
	FlagBacktrack    obs.Counter // help() attempts that failed flagging and backtracked
	OpRetries        obs.Counter // mutator retry-loop iterations past the first
	SnapshotRenewals obs.Counter // stale-generation nodes renewed by searchMut
	Depth            obs.Hist    // descent depth per mutator search (searchMut)
}

// Stats returns the trie's live counter block. Callers may read it at any
// time; for a consistent copy use StatsSnapshot.
func (t *Trie[K, V]) Stats() *Stats { return &t.stats }

// StatsSnapshot is a plain-value copy of a Stats block, mergeable across
// shards.
type StatsSnapshot struct {
	Help             int64
	HelpAssist       int64
	ChildCASFail     int64
	FlagBacktrack    int64
	OpRetries        int64
	SnapshotRenewals int64
	Depth            obs.HistSnapshot
}

// StatsSnapshot captures the current counter values. Under concurrent
// mutation the fields are individually — not mutually — consistent, which
// is all a metrics scrape needs.
func (t *Trie[K, V]) StatsSnapshot() StatsSnapshot {
	return StatsSnapshot{
		Help:             t.stats.Help.Load(),
		HelpAssist:       t.stats.HelpAssist.Load(),
		ChildCASFail:     t.stats.ChildCASFail.Load(),
		FlagBacktrack:    t.stats.FlagBacktrack.Load(),
		OpRetries:        t.stats.OpRetries.Load(),
		SnapshotRenewals: t.stats.SnapshotRenewals.Load(),
		Depth:            t.stats.Depth.Snapshot(),
	}
}

// Merge adds another snapshot into s (per-shard → aggregate).
func (s *StatsSnapshot) Merge(o StatsSnapshot) {
	s.Help += o.Help
	s.HelpAssist += o.HelpAssist
	s.ChildCASFail += o.ChildCASFail
	s.FlagBacktrack += o.FlagBacktrack
	s.OpRetries += o.OpRetries
	s.SnapshotRenewals += o.SnapshotRenewals
	s.Depth.Merge(o.Depth)
}

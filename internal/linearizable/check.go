// Package linearizable checks recorded concurrent histories of set
// operations for linearizability (Herlihy & Wing), using the classic
// Wing–Gong depth-first search with memoization. It is used by the test
// suites to validate the atomicity claims of the trie — in particular
// that Replace removes one key and inserts another at a single instant.
//
// Histories are bounded (at most 64 operations) because the problem is
// NP-complete in general; the tests record many small histories rather
// than one large one.
package linearizable

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind identifies a set operation.
type Kind uint8

// The set operations of the paper's sequential specification.
const (
	Insert Kind = iota + 1
	Delete
	Contains
	Replace
)

func (k Kind) String() string {
	switch k {
	case Insert:
		return "Insert"
	case Delete:
		return "Delete"
	case Contains:
		return "Contains"
	case Replace:
		return "Replace"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Op is one completed operation in a history. Start and End are logical
// timestamps drawn from a shared monotone counter: operation A really
// precedes operation B iff A.End < B.Start.
type Op struct {
	Kind   Kind
	Key    uint64
	Key2   uint64 // Replace only: the inserted key
	Result bool
	Start  int64
	End    int64
}

func (o Op) String() string {
	if o.Kind == Replace {
		return fmt.Sprintf("%s(%d,%d)=%v@[%d,%d]", o.Kind, o.Key, o.Key2, o.Result, o.Start, o.End)
	}
	return fmt.Sprintf("%s(%d)=%v@[%d,%d]", o.Kind, o.Key, o.Result, o.Start, o.End)
}

// Check reports whether the history is linearizable with respect to the
// sequential set specification, starting from the empty set. It panics if
// the history holds more than 64 operations.
func Check(history []Op) bool {
	if len(history) > 64 {
		panic("linearizable: history longer than 64 operations")
	}
	c := &checker{history: history, memo: make(map[string]struct{})}
	return c.dfs(0, make(map[uint64]bool))
}

type checker struct {
	history []Op
	memo    map[string]struct{}
}

// dfs attempts to extend a partial linearization. mask records which
// operations are already linearized; state is the set contents they
// produce. An operation is a legal next choice only if it is "minimal":
// no still-unlinearized operation finished before it started.
func (c *checker) dfs(mask uint64, state map[uint64]bool) bool {
	full := uint64(1)<<len(c.history) - 1
	if mask == full {
		return true
	}
	key := memoKey(mask, state)
	if _, seen := c.memo[key]; seen {
		return false
	}

	for i := range c.history {
		if mask&(1<<i) != 0 {
			continue
		}
		minimal := true
		for j := range c.history {
			if j != i && mask&(1<<j) == 0 && c.history[j].End < c.history[i].Start {
				minimal = false
				break
			}
		}
		if !minimal {
			continue
		}
		op := c.history[i]
		undo, ok := apply(op, state)
		if !ok {
			continue
		}
		if c.dfs(mask|1<<i, state) {
			return true
		}
		undo(state)
	}
	c.memo[key] = struct{}{}
	return false
}

// apply checks op's recorded result against the current state and, if
// consistent, applies its effect. It returns an undo function.
func apply(op Op, state map[uint64]bool) (func(map[uint64]bool), bool) {
	switch op.Kind {
	case Insert:
		if op.Result == state[op.Key] {
			return nil, false // true iff key was absent
		}
		if !op.Result {
			return undoNothing, true
		}
		state[op.Key] = true
		k := op.Key
		return func(s map[uint64]bool) { delete(s, k) }, true
	case Delete:
		if op.Result != state[op.Key] {
			return nil, false // true iff key was present
		}
		if !op.Result {
			return undoNothing, true
		}
		delete(state, op.Key)
		k := op.Key
		return func(s map[uint64]bool) { s[k] = true }, true
	case Contains:
		if op.Result != state[op.Key] {
			return nil, false
		}
		return undoNothing, true
	case Replace:
		want := state[op.Key] && !state[op.Key2] && op.Key != op.Key2
		if op.Result != want {
			return nil, false
		}
		if !op.Result {
			return undoNothing, true
		}
		delete(state, op.Key)
		state[op.Key2] = true
		k, k2 := op.Key, op.Key2
		return func(s map[uint64]bool) { delete(s, k2); s[k] = true }, true
	default:
		return nil, false
	}
}

func undoNothing(map[uint64]bool) {}

// memoKey canonically serializes (mask, state). Two search nodes with the
// same linearized set and the same resulting contents explore identical
// futures, so revisiting either is pointless.
func memoKey(mask uint64, state map[uint64]bool) string {
	ks := make([]uint64, 0, len(state))
	for k, v := range state {
		if v {
			ks = append(ks, k)
		}
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	var sb strings.Builder
	sb.WriteString(strconv.FormatUint(mask, 16))
	for _, k := range ks {
		sb.WriteByte(',')
		sb.WriteString(strconv.FormatUint(k, 16))
	}
	return sb.String()
}

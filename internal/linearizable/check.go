// Package linearizable checks recorded concurrent histories of set and
// map operations for linearizability (Herlihy & Wing), using the classic
// Wing–Gong depth-first search with memoization. It is used by the test
// suites to validate the atomicity claims of the trie — in particular
// that Replace removes one key and inserts another at a single instant,
// and that value reads (Load) never observe a binding that no
// linearization can explain.
//
// The sequential specification is a uint64 → uint64 map; the set
// operations are the special case that ignores values (Insert binds 0).
//
// Histories are bounded (at most 64 operations) because the problem is
// NP-complete in general; the tests record many small histories rather
// than one large one.
package linearizable

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind identifies a set operation.
type Kind uint8

// The set operations of the paper's sequential specification, followed
// by the value-bearing map operations layered on top of it.
const (
	Insert Kind = iota + 1
	Delete
	Contains
	Replace
	// Load reads k's binding: Result is presence, Val the value observed
	// (meaningful only when Result is true).
	Load
	// Store unconditionally binds Val to the key; Result must be true.
	Store
	// LoadOrStore tries to bind Val; Result reports whether an existing
	// binding was loaded instead, and Val2 is the value returned.
	LoadOrStore
	// CompareAndSwap rebinds the key from Val to Val2; Result reports
	// whether the swap happened.
	CompareAndSwap
	// CompareAndDelete removes the key if bound to Val; Result reports
	// whether the delete happened.
	CompareAndDelete
)

func (k Kind) String() string {
	switch k {
	case Insert:
		return "Insert"
	case Delete:
		return "Delete"
	case Contains:
		return "Contains"
	case Replace:
		return "Replace"
	case Load:
		return "Load"
	case Store:
		return "Store"
	case LoadOrStore:
		return "LoadOrStore"
	case CompareAndSwap:
		return "CompareAndSwap"
	case CompareAndDelete:
		return "CompareAndDelete"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Op is one completed operation in a history. Start and End are logical
// timestamps drawn from a shared monotone counter: operation A really
// precedes operation B iff A.End < B.Start. Val and Val2 carry the value
// arguments/observations of the map kinds (see the Kind constants).
type Op struct {
	Kind   Kind
	Key    uint64
	Key2   uint64 // Replace only: the inserted key
	Val    uint64
	Val2   uint64
	Result bool
	Start  int64
	End    int64
}

func (o Op) String() string {
	switch o.Kind {
	case Replace:
		return fmt.Sprintf("%s(%d,%d)=%v@[%d,%d]", o.Kind, o.Key, o.Key2, o.Result, o.Start, o.End)
	case Load:
		return fmt.Sprintf("%s(%d)=%d,%v@[%d,%d]", o.Kind, o.Key, o.Val, o.Result, o.Start, o.End)
	case Store:
		return fmt.Sprintf("%s(%d,%d)@[%d,%d]", o.Kind, o.Key, o.Val, o.Start, o.End)
	case LoadOrStore:
		return fmt.Sprintf("%s(%d,%d)=%d,%v@[%d,%d]", o.Kind, o.Key, o.Val, o.Val2, o.Result, o.Start, o.End)
	case CompareAndSwap:
		return fmt.Sprintf("%s(%d,%d,%d)=%v@[%d,%d]", o.Kind, o.Key, o.Val, o.Val2, o.Result, o.Start, o.End)
	case CompareAndDelete:
		return fmt.Sprintf("%s(%d,%d)=%v@[%d,%d]", o.Kind, o.Key, o.Val, o.Result, o.Start, o.End)
	default:
		return fmt.Sprintf("%s(%d)=%v@[%d,%d]", o.Kind, o.Key, o.Result, o.Start, o.End)
	}
}

// Check reports whether the history is linearizable with respect to the
// sequential set specification, starting from the empty set. It panics if
// the history holds more than 64 operations.
func Check(history []Op) bool {
	if len(history) > 64 {
		panic("linearizable: history longer than 64 operations")
	}
	c := &checker{history: history, memo: make(map[string]struct{})}
	return c.dfs(0, make(map[uint64]uint64))
}

type checker struct {
	history []Op
	memo    map[string]struct{}
}

// dfs attempts to extend a partial linearization. mask records which
// operations are already linearized; state maps each present key to its
// bound value. An operation is a legal next choice only if it is
// "minimal": no still-unlinearized operation finished before it started.
func (c *checker) dfs(mask uint64, state map[uint64]uint64) bool {
	full := uint64(1)<<len(c.history) - 1
	if mask == full {
		return true
	}
	key := memoKey(mask, state)
	if _, seen := c.memo[key]; seen {
		return false
	}

	for i := range c.history {
		if mask&(1<<i) != 0 {
			continue
		}
		minimal := true
		for j := range c.history {
			if j != i && mask&(1<<j) == 0 && c.history[j].End < c.history[i].Start {
				minimal = false
				break
			}
		}
		if !minimal {
			continue
		}
		op := c.history[i]
		undo, ok := apply(op, state)
		if !ok {
			continue
		}
		if c.dfs(mask|1<<i, state) {
			return true
		}
		undo(state)
	}
	c.memo[key] = struct{}{}
	return false
}

// apply checks op's recorded result against the current state and, if
// consistent, applies its effect. It returns an undo function.
func apply(op Op, state map[uint64]uint64) (func(map[uint64]uint64), bool) {
	_, present := state[op.Key]
	switch op.Kind {
	case Insert:
		if op.Result == present {
			return nil, false // true iff key was absent
		}
		if !op.Result {
			return undoNothing, true
		}
		state[op.Key] = 0
		k := op.Key
		return func(s map[uint64]uint64) { delete(s, k) }, true
	case Delete:
		if op.Result != present {
			return nil, false // true iff key was present
		}
		if !op.Result {
			return undoNothing, true
		}
		old := state[op.Key]
		delete(state, op.Key)
		k := op.Key
		return func(s map[uint64]uint64) { s[k] = old }, true
	case Contains:
		if op.Result != present {
			return nil, false
		}
		return undoNothing, true
	case Replace:
		_, present2 := state[op.Key2]
		want := present && !present2 && op.Key != op.Key2
		if op.Result != want {
			return nil, false
		}
		if !op.Result {
			return undoNothing, true
		}
		moved := state[op.Key]
		delete(state, op.Key)
		state[op.Key2] = moved
		k, k2 := op.Key, op.Key2
		return func(s map[uint64]uint64) { delete(s, k2); s[k] = moved }, true
	case Load:
		if op.Result != present || (present && state[op.Key] != op.Val) {
			return nil, false
		}
		return undoNothing, true
	case Store:
		if !op.Result {
			return nil, false // Store cannot fail on in-range keys
		}
		old, had := state[op.Key], present
		state[op.Key] = op.Val
		k := op.Key
		return func(s map[uint64]uint64) {
			if had {
				s[k] = old
			} else {
				delete(s, k)
			}
		}, true
	case LoadOrStore:
		if op.Result != present {
			return nil, false // loaded iff present
		}
		if present {
			if state[op.Key] != op.Val2 {
				return nil, false // must return the existing binding
			}
			return undoNothing, true
		}
		if op.Val2 != op.Val {
			return nil, false // a store must return the stored value
		}
		state[op.Key] = op.Val
		k := op.Key
		return func(s map[uint64]uint64) { delete(s, k) }, true
	case CompareAndSwap:
		want := present && state[op.Key] == op.Val
		if op.Result != want {
			return nil, false
		}
		if !op.Result {
			return undoNothing, true
		}
		old := state[op.Key]
		state[op.Key] = op.Val2
		k := op.Key
		return func(s map[uint64]uint64) { s[k] = old }, true
	case CompareAndDelete:
		want := present && state[op.Key] == op.Val
		if op.Result != want {
			return nil, false
		}
		if !op.Result {
			return undoNothing, true
		}
		old := state[op.Key]
		delete(state, op.Key)
		k := op.Key
		return func(s map[uint64]uint64) { s[k] = old }, true
	default:
		return nil, false
	}
}

func undoNothing(map[uint64]uint64) {}

// memoKey canonically serializes (mask, state). Two search nodes with the
// same linearized set and the same resulting contents explore identical
// futures, so revisiting either is pointless.
func memoKey(mask uint64, state map[uint64]uint64) string {
	ks := make([]uint64, 0, len(state))
	for k := range state {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	var sb strings.Builder
	sb.WriteString(strconv.FormatUint(mask, 16))
	for _, k := range ks {
		sb.WriteByte(',')
		sb.WriteString(strconv.FormatUint(k, 16))
		sb.WriteByte(':')
		sb.WriteString(strconv.FormatUint(state[k], 16))
	}
	return sb.String()
}

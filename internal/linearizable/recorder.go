package linearizable

import (
	"sync"
	"sync/atomic"
)

// Recorder collects a concurrent history of set operations. Each worker
// wraps its calls in Invoke/Return pairs; timestamps come from one shared
// atomic counter, so End < Start between two operations certifies real
// precedence. A Recorder must not be reused across histories.
type Recorder struct {
	clock atomic.Int64
	mu    sync.Mutex
	ops   []Op
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Record runs fn — which must perform exactly the described operation and
// return its result — between two timestamp draws and appends the
// completed Op to the history.
func (r *Recorder) Record(kind Kind, key, key2 uint64, fn func() bool) bool {
	start := r.clock.Add(1)
	res := fn()
	end := r.clock.Add(1)
	r.mu.Lock()
	r.ops = append(r.ops, Op{Kind: kind, Key: key, Key2: key2, Result: res, Start: start, End: end})
	r.mu.Unlock()
	return res
}

// RecordOp runs fn between two timestamp draws and appends the Op it
// returns — with Start/End filled in by the recorder — to the history.
// It is the general form of Record for the value-bearing map kinds,
// whose observed values are only known after the call.
func (r *Recorder) RecordOp(fn func() Op) {
	start := r.clock.Add(1)
	op := fn()
	end := r.clock.Add(1)
	op.Start, op.End = start, end
	r.mu.Lock()
	r.ops = append(r.ops, op)
	r.mu.Unlock()
}

// History returns the recorded operations. Call only after all workers
// have finished.
func (r *Recorder) History() []Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Op, len(r.ops))
	copy(out, r.ops)
	return out
}

// Len returns the number of recorded operations.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ops)
}

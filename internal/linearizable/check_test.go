package linearizable

import (
	"sync"
	"testing"
)

// seq builds a strictly sequential history from (kind, key, key2, result)
// tuples.
func seq(ops ...[4]int64) []Op {
	out := make([]Op, len(ops))
	t := int64(0)
	for i, o := range ops {
		out[i] = Op{
			Kind: Kind(o[0]), Key: uint64(o[1]), Key2: uint64(o[2]),
			Result: o[3] != 0, Start: t, End: t + 1,
		}
		t += 2
	}
	return out
}

func TestSequentialHistories(t *testing.T) {
	i, d, c, r := int64(Insert), int64(Delete), int64(Contains), int64(Replace)
	good := [][]Op{
		{},
		seq([4]int64{i, 1, 0, 1}),
		seq([4]int64{i, 1, 0, 1}, [4]int64{i, 1, 0, 0}),
		seq([4]int64{i, 1, 0, 1}, [4]int64{d, 1, 0, 1}, [4]int64{d, 1, 0, 0}),
		seq([4]int64{c, 9, 0, 0}, [4]int64{i, 9, 0, 1}, [4]int64{c, 9, 0, 1}),
		seq([4]int64{i, 1, 0, 1}, [4]int64{r, 1, 2, 1}, [4]int64{c, 1, 0, 0}, [4]int64{c, 2, 0, 1}),
		seq([4]int64{r, 1, 2, 0}), // replace on empty set fails
		seq([4]int64{i, 1, 0, 1}, [4]int64{i, 2, 0, 1}, [4]int64{r, 1, 2, 0}),
		seq([4]int64{i, 1, 0, 1}, [4]int64{r, 1, 1, 0}), // same-key replace fails
	}
	for n, h := range good {
		if !Check(h) {
			t.Errorf("history %d should be linearizable: %v", n, h)
		}
	}
	bad := [][]Op{
		seq([4]int64{i, 1, 0, 0}),                       // insert into empty set can't fail
		seq([4]int64{d, 1, 0, 1}),                       // delete from empty set can't succeed
		seq([4]int64{c, 1, 0, 1}),                       // contains on empty set can't be true
		seq([4]int64{i, 1, 0, 1}, [4]int64{i, 1, 0, 1}), // double insert both true
		seq([4]int64{i, 1, 0, 1}, [4]int64{r, 1, 2, 1}, [4]int64{c, 1, 0, 1}),
		seq([4]int64{i, 1, 0, 1}, [4]int64{r, 1, 2, 1}, [4]int64{c, 2, 0, 0}),
		seq([4]int64{i, 1, 0, 1}, [4]int64{r, 1, 1, 1}), // same-key replace can't succeed
	}
	for n, h := range bad {
		if Check(h) {
			t.Errorf("history %d should NOT be linearizable: %v", n, h)
		}
	}
}

func TestConcurrentOverlapAllowsReordering(t *testing.T) {
	// Two overlapping inserts of the same key: exactly one may win,
	// regardless of internal timing.
	h := []Op{
		{Kind: Insert, Key: 5, Result: false, Start: 0, End: 10},
		{Kind: Insert, Key: 5, Result: true, Start: 1, End: 2},
	}
	if !Check(h) {
		t.Error("overlapping inserts with one winner must be linearizable")
	}
	// But a strict real-time order cannot be inverted: the first insert
	// completed before the second began, so the first must win.
	h = []Op{
		{Kind: Insert, Key: 5, Result: false, Start: 0, End: 1},
		{Kind: Insert, Key: 5, Result: true, Start: 2, End: 3},
	}
	if Check(h) {
		t.Error("real-time order violation must be rejected")
	}
}

// TestNonAtomicReplaceDetected encodes the anomaly an atomic replace
// forbids: a reader observing the window where a delete+insert "replace"
// has removed the old key but not yet inserted the new one. The paper's
// Replace makes both changes visible at one instant, so this history is
// not linearizable for a correct implementation.
func TestNonAtomicReplaceDetected(t *testing.T) {
	h := []Op{
		{Kind: Insert, Key: 1, Result: true, Start: 0, End: 1},
		// Replace(1,2) succeeding, spanning [2, 9].
		{Kind: Replace, Key: 1, Key2: 2, Result: true, Start: 2, End: 9},
		// A reader inside that window sees neither key: impossible if the
		// replace is atomic.
		{Kind: Contains, Key: 1, Result: false, Start: 3, End: 4},
		{Kind: Contains, Key: 2, Result: false, Start: 5, End: 6},
	}
	if Check(h) {
		t.Error("torn replace (both keys absent) must be rejected")
	}
	// The same shape with the second read seeing the new key is fine.
	h[3].Result = true
	if !Check(h) {
		t.Error("replace observed as already-applied must be accepted")
	}
}

// fakeLockedSet is a trivially correct reference implementation used to
// exercise the Recorder + Check pipeline end to end.
type fakeLockedSet struct {
	mu sync.Mutex
	m  map[uint64]bool
}

func (s *fakeLockedSet) insert(k uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m[k] {
		return false
	}
	s.m[k] = true
	return true
}

func (s *fakeLockedSet) delete(k uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.m[k] {
		return false
	}
	delete(s.m, k)
	return true
}

func (s *fakeLockedSet) contains(k uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[k]
}

func TestRecorderWithReferenceSet(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rec := NewRecorder()
		set := &fakeLockedSet{m: make(map[uint64]bool)}
		var wg sync.WaitGroup
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 5; i++ {
					k := uint64((g + i) % 3)
					switch (g + i) % 3 {
					case 0:
						rec.Record(Insert, k, 0, func() bool { return set.insert(k) })
					case 1:
						rec.Record(Delete, k, 0, func() bool { return set.delete(k) })
					case 2:
						rec.Record(Contains, k, 0, func() bool { return set.contains(k) })
					}
				}
			}(g)
		}
		wg.Wait()
		if !Check(rec.History()) {
			t.Fatalf("trial %d: history of a lock-protected set must linearize:\n%v",
				trial, rec.History())
		}
	}
}

func TestCheckPanicsOnHugeHistory(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Check should panic on >64 operations")
		}
	}()
	Check(make([]Op, 65))
}

func TestRecorderLen(t *testing.T) {
	rec := NewRecorder()
	if rec.Len() != 0 {
		t.Error("fresh recorder not empty")
	}
	rec.Record(Insert, 1, 0, func() bool { return true })
	rec.Record(Contains, 1, 0, func() bool { return true })
	if rec.Len() != 2 {
		t.Errorf("Len = %d, want 2", rec.Len())
	}
	h := rec.History()
	if len(h) != 2 || h[0].Start >= h[0].End || h[0].End >= h[1].Start {
		t.Errorf("sequential records must have ordered timestamps: %v", h)
	}
}

func TestKindString(t *testing.T) {
	if Insert.String() != "Insert" || Replace.String() != "Replace" {
		t.Error("Kind.String broken")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
}

// --- value-bearing map kinds ---

// seq builds a sequential history (op i strictly precedes op i+1).
func seqOps(ops []Op) []Op {
	for i := range ops {
		ops[i].Start = int64(2 * i)
		ops[i].End = int64(2*i + 1)
	}
	return ops
}

func TestCheckMapKindsSequential(t *testing.T) {
	ok := seqOps([]Op{
		{Kind: Store, Key: 1, Val: 10, Result: true},
		{Kind: Load, Key: 1, Val: 10, Result: true},
		{Kind: LoadOrStore, Key: 1, Val: 99, Val2: 10, Result: true}, // loaded existing
		{Kind: CompareAndSwap, Key: 1, Val: 10, Val2: 20, Result: true},
		{Kind: CompareAndSwap, Key: 1, Val: 10, Val2: 30, Result: false}, // stale old
		{Kind: Load, Key: 1, Val: 20, Result: true},
		{Kind: CompareAndDelete, Key: 1, Val: 99, Result: false},
		{Kind: CompareAndDelete, Key: 1, Val: 20, Result: true},
		{Kind: Load, Key: 1, Result: false},
		{Kind: LoadOrStore, Key: 2, Val: 7, Val2: 7, Result: false}, // stored
		{Kind: Replace, Key: 2, Key2: 3, Result: true},
		{Kind: Load, Key: 3, Val: 7, Result: true}, // Replace moved the value
	})
	if !Check(ok) {
		t.Error("valid sequential map history rejected")
	}
}

func TestCheckMapKindsRejectAnomalies(t *testing.T) {
	cases := map[string][]Op{
		"stale load": seqOps([]Op{
			{Kind: Store, Key: 1, Val: 10, Result: true},
			{Kind: Store, Key: 1, Val: 20, Result: true},
			{Kind: Load, Key: 1, Val: 10, Result: true},
		}),
		"load from nowhere": seqOps([]Op{
			{Kind: Load, Key: 1, Val: 5, Result: true},
		}),
		"cas ghost": seqOps([]Op{
			{Kind: Store, Key: 1, Val: 10, Result: true},
			{Kind: CompareAndSwap, Key: 1, Val: 11, Val2: 20, Result: true},
		}),
		"loadorstore wrong return": seqOps([]Op{
			{Kind: Store, Key: 1, Val: 10, Result: true},
			{Kind: LoadOrStore, Key: 1, Val: 5, Val2: 5, Result: true},
		}),
		"replace drops value": seqOps([]Op{
			{Kind: Store, Key: 1, Val: 10, Result: true},
			{Kind: Replace, Key: 1, Key2: 2, Result: true},
			{Kind: Load, Key: 2, Val: 0, Result: true},
		}),
		"failed store": seqOps([]Op{
			{Kind: Store, Key: 1, Val: 10, Result: false},
		}),
	}
	for name, h := range cases {
		if Check(h) {
			t.Errorf("%s: anomalous history accepted:\n%v", name, h)
		}
	}
}

func TestCheckMapKindsConcurrentOverlap(t *testing.T) {
	// Two overlapping stores and a later load: either winner explains the
	// load, so this must linearize...
	h := []Op{
		{Kind: Store, Key: 1, Val: 10, Result: true, Start: 0, End: 3},
		{Kind: Store, Key: 1, Val: 20, Result: true, Start: 1, End: 4},
		{Kind: Load, Key: 1, Val: 10, Result: true, Start: 5, End: 6},
	}
	if !Check(h) {
		t.Error("overlapping stores: load of either value must linearize")
	}
	// ...but a load of a third value must not.
	h[2].Val = 30
	if Check(h) {
		t.Error("load of a never-stored value accepted")
	}
}

func TestRecordOp(t *testing.T) {
	rec := NewRecorder()
	rec.RecordOp(func() Op { return Op{Kind: Store, Key: 1, Val: 10, Result: true} })
	rec.RecordOp(func() Op { return Op{Kind: Load, Key: 1, Val: 10, Result: true} })
	h := rec.History()
	if len(h) != 2 || h[0].End >= h[1].Start {
		t.Fatalf("RecordOp timestamps wrong: %v", h)
	}
	if !Check(h) {
		t.Error("recorded map history must linearize")
	}
}

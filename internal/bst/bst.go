// Package bst implements the non-blocking external binary search tree of
// Ellen, Fatourou, Ruppert and van Breugel, "Non-blocking Binary Search
// Trees" (PODC 2010) — the paper's BST baseline, and the algorithm whose
// coordination scheme the Patricia trie extends.
//
// The tree is external: elements live in leaves, internal nodes hold
// routing keys. Each internal node carries an update field (state + Info
// record) that acts as a lock-free flag: inserts flag the parent of the
// leaf they replace (IFlag), deletes flag the grandparent (DFlag) and
// mark the parent permanently (Mark). Flagged operations are helped to
// completion by any process that encounters them. All update records are
// freshly allocated, so CAS on update fields cannot suffer ABA; child
// pointers only ever swing to newly created nodes, for the same reason.
package bst

import "sync/atomic"

// rank distinguishes user keys from the two infinite sentinels; inf2 is
// the largest key, inf1 the second largest (paper's ∞1 < ∞2).
type rank uint8

const (
	rankUser rank = iota
	rankInf1
	rankInf2
)

// key is a user key or sentinel; sentinels compare above every user key.
type key struct {
	v uint64
	r rank
}

func (a key) less(b key) bool {
	if a.r != b.r {
		return a.r < b.r
	}
	return a.v < b.v
}

func (a key) equal(b key) bool { return a.r == b.r && a.v == b.v }

// state is the flag component of an internal node's update field.
type state uint8

const (
	stateClean state = iota
	stateIFlag
	stateDFlag
	stateMark
)

// update is the (state, Info) pair CASed atomically on internal nodes.
// Every transition installs a freshly allocated record, so pointer
// comparison is exact and ABA-free.
type update struct {
	state state
	iinfo *iInfo
	dinfo *dInfo
}

// iInfo describes a pending insert: replace leaf l under p with newChild.
type iInfo struct {
	p        *node
	l        *node
	newChild *node
}

// dInfo describes a pending delete: unlink p (parent of leaf l) from gp,
// promoting l's sibling. pupdate is the clean update value read from p
// before flagging gp.
type dInfo struct {
	gp, p, l *node
	pupdate  *update
}

// node is a leaf (leaf true, no children) or internal routing node.
type node struct {
	key    key
	leaf   bool
	update atomic.Pointer[update]
	child  [2]atomic.Pointer[node] // 0 = left, 1 = right
}

func newLeaf(k key) *node {
	n := &node{key: k, leaf: true}
	n.update.Store(&update{state: stateClean})
	return n
}

func newInternal(k key, left, right *node) *node {
	n := &node{key: k}
	n.update.Store(&update{state: stateClean})
	n.child[0].Store(left)
	n.child[1].Store(right)
	return n
}

// Tree is the non-blocking BST. The zero value is not usable; call New.
type Tree struct {
	root *node
}

// New returns an empty tree. The initial tree is the paper's: a root with
// key ∞2 whose children are leaves ∞1 and ∞2, so user leaves always have
// a parent and (once real keys exist) a grandparent.
func New() *Tree {
	root := newInternal(key{r: rankInf2},
		newLeaf(key{r: rankInf1}),
		newLeaf(key{r: rankInf2}))
	return &Tree{root: root}
}

// searchResult is the ⟨gp, p, l, pupdate, gpupdate⟩ tuple of the paper.
type searchResult struct {
	gp, p, l          *node
	pupdate, gpupdate *update
}

// search descends from the root to the leaf where k is or would be,
// recording the last two internal nodes and their update fields (read
// before the corresponding child pointers).
func (t *Tree) search(k key) searchResult {
	var r searchResult
	l := t.root
	for !l.leaf {
		r.gp, r.gpupdate = r.p, r.pupdate
		r.p = l
		r.pupdate = l.update.Load()
		if k.less(l.key) {
			l = l.child[0].Load()
		} else {
			l = l.child[1].Load()
		}
	}
	r.l = l
	return r
}

// Contains reports whether k is in the set. Like the paper's Find it
// performs no writes, but it is only lock-free (not wait-free): the tree
// height is unbounded.
func (t *Tree) Contains(k uint64) bool {
	return t.search(key{v: k}).l.key.equal(key{v: k})
}

// Insert adds k, returning false if already present.
func (t *Tree) Insert(k uint64) bool {
	kk := key{v: k}
	for {
		r := t.search(kk)
		if r.l.key.equal(kk) {
			return false
		}
		if r.pupdate.state != stateClean {
			t.help(r.pupdate)
			continue
		}
		// Build the replacement subtree: a new internal node holding the
		// new leaf and a fresh copy of the displaced leaf (copying avoids
		// ABA on the child CAS).
		nl := newLeaf(kk)
		sib := newLeaf(r.l.key)
		var newChild *node
		if kk.less(r.l.key) {
			newChild = newInternal(r.l.key, nl, sib)
		} else {
			newChild = newInternal(kk, sib, nl)
		}
		op := &iInfo{p: r.p, l: r.l, newChild: newChild}
		if r.p.update.CompareAndSwap(r.pupdate, &update{state: stateIFlag, iinfo: op}) {
			t.helpInsert(op) // iflag CAS succeeded
			return true
		}
		t.help(r.p.update.Load())
	}
}

// Delete removes k, returning false if absent.
func (t *Tree) Delete(k uint64) bool {
	kk := key{v: k}
	for {
		r := t.search(kk)
		if !r.l.key.equal(kk) {
			return false
		}
		if r.gp == nil {
			// A user leaf always has a grandparent: the root's left
			// subtree contains the ∞1 dummy, so a lone leaf child of the
			// root is a sentinel. Unreachable; retry defensively.
			continue
		}
		if r.gpupdate.state != stateClean {
			t.help(r.gpupdate)
			continue
		}
		if r.pupdate.state != stateClean {
			t.help(r.pupdate)
			continue
		}
		op := &dInfo{gp: r.gp, p: r.p, l: r.l, pupdate: r.pupdate}
		if r.gp.update.CompareAndSwap(r.gpupdate, &update{state: stateDFlag, dinfo: op}) {
			if t.helpDelete(op) { // dflag CAS succeeded
				return true
			}
			continue
		}
		t.help(r.gp.update.Load())
	}
}

// help dispatches on the state of an update record found in the way.
func (t *Tree) help(u *update) {
	switch u.state {
	case stateIFlag:
		t.helpInsert(u.iinfo)
	case stateMark:
		t.helpMarked(u.dinfo)
	case stateDFlag:
		t.helpDelete(u.dinfo)
	}
}

// helpInsert performs the insert's child CAS and unflags the parent.
func (t *Tree) helpInsert(op *iInfo) {
	casChild(op.p, op.l, op.newChild)
	cur := op.p.update.Load()
	if cur.state == stateIFlag && cur.iinfo == op {
		op.p.update.CompareAndSwap(cur, &update{state: stateClean})
	}
}

// helpDelete tries to mark the parent; on success (by anyone) the
// physical unlink proceeds, otherwise the grandparent flag is backed off.
func (t *Tree) helpDelete(op *dInfo) bool {
	op.p.update.CompareAndSwap(op.pupdate, &update{state: stateMark, dinfo: op})
	cur := op.p.update.Load()
	if cur.state == stateMark && cur.dinfo == op {
		t.helpMarked(op)
		return true
	}
	t.help(cur)
	gcur := op.gp.update.Load()
	if gcur.state == stateDFlag && gcur.dinfo == op {
		op.gp.update.CompareAndSwap(gcur, &update{state: stateClean}) // backtrack CAS
	}
	return false
}

// helpMarked swings the grandparent's pointer from the marked parent to
// the leaf's sibling and unflags the grandparent. The parent is marked,
// so its children are frozen and reading the sibling here is safe.
func (t *Tree) helpMarked(op *dInfo) {
	var other *node
	if op.p.child[1].Load() == op.l {
		other = op.p.child[0].Load()
	} else {
		other = op.p.child[1].Load()
	}
	casChild(op.gp, op.p, other)
	cur := op.gp.update.Load()
	if cur.state == stateDFlag && cur.dinfo == op {
		op.gp.update.CompareAndSwap(cur, &update{state: stateClean})
	}
}

// casChild swings the child pointer of parent that should point at old,
// chosen by key order, from old to new (the paper's CAS-Child).
func casChild(parent, old, new *node) {
	if new.key.less(parent.key) {
		parent.child[0].CompareAndSwap(old, new)
	} else {
		parent.child[1].CompareAndSwap(old, new)
	}
}

// Size counts the user keys; quiescent use only.
func (t *Tree) Size() int {
	return countLeaves(t.root)
}

func countLeaves(n *node) int {
	if n.leaf {
		if n.key.r == rankUser {
			return 1
		}
		return 0
	}
	return countLeaves(n.child[0].Load()) + countLeaves(n.child[1].Load())
}

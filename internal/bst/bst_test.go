package bst

import (
	"math/rand"
	"sync"
	"testing"

	"nbtrie/internal/settest"
)

func TestConformance(t *testing.T) {
	settest.Run(t, func(uint64) settest.Set { return New() })
}

func TestSizeQuiescent(t *testing.T) {
	tr := New()
	for k := uint64(0); k < 100; k++ {
		tr.Insert(k)
	}
	if got := tr.Size(); got != 100 {
		t.Errorf("Size() = %d, want 100", got)
	}
	for k := uint64(0); k < 100; k += 2 {
		tr.Delete(k)
	}
	if got := tr.Size(); got != 50 {
		t.Errorf("Size() = %d, want 50", got)
	}
}

func TestValidateAfterChurn(t *testing.T) {
	tr := New()
	if err := tr.Validate(); err != nil {
		t.Fatalf("fresh tree: %v", err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10000; i++ {
		k := rng.Uint64() % 512
		if rng.Intn(2) == 0 {
			tr.Insert(k)
		} else {
			tr.Delete(k)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("after churn: %v", err)
	}
}

func TestValidateAfterConcurrentChurn(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 5000; i++ {
				k := rng.Uint64() % 128
				if rng.Intn(2) == 0 {
					tr.Insert(k)
				} else {
					tr.Delete(k)
				}
			}
		}(int64(g))
	}
	wg.Wait()
	if err := tr.Validate(); err != nil {
		t.Fatalf("after concurrent churn: %v", err)
	}
}

func TestSentinelOrdering(t *testing.T) {
	a := key{v: ^uint64(0)}
	b := key{r: rankInf1}
	c := key{r: rankInf2}
	if !a.less(b) || !b.less(c) || b.less(a) {
		t.Error("sentinels must compare above every user key, ∞1 < ∞2")
	}
}

package bst

import "fmt"

// Validate checks the tree's structural invariants at quiescence: every
// reachable internal node is Clean (unflagged), leaves respect the BST
// routing bounds, and the two sentinel leaves terminate the right spine.
func (t *Tree) Validate() error {
	if t.root.key.r != rankInf2 {
		return fmt.Errorf("root key must be the ∞2 sentinel")
	}
	return t.validateNode(t.root, nil, nil)
}

// validateNode recurses with exclusive upper and inclusive lower key
// bounds (external BST: left subtree < node key ≤ right subtree).
func (t *Tree) validateNode(n *node, lo, hi *key) error {
	if u := n.update.Load(); u.state != stateClean {
		return fmt.Errorf("reachable node (key %v) not Clean at quiescence", n.key)
	}
	if n.leaf {
		if lo != nil && n.key.less(*lo) {
			return fmt.Errorf("leaf %v below its lower bound %v", n.key, *lo)
		}
		if hi != nil && !n.key.less(*hi) {
			return fmt.Errorf("leaf %v at or above its upper bound %v", n.key, *hi)
		}
		return nil
	}
	left, right := n.child[0].Load(), n.child[1].Load()
	if left == nil || right == nil {
		return fmt.Errorf("internal node %v has a nil child", n.key)
	}
	if err := t.validateNode(left, lo, &n.key); err != nil {
		return err
	}
	return t.validateNode(right, &n.key, hi)
}

package workload

import (
	"math"
	"testing"
)

func TestMixValidity(t *testing.T) {
	for _, m := range []Mix{MixI5D5F90, MixI50D50, MixI15D15F70, MixI10D10R80} {
		if !m.Valid() {
			t.Errorf("paper mix %v invalid", m)
		}
	}
	if (Mix{InsertPct: 50, DeletePct: 49}).Valid() {
		t.Error("mix summing to 99 should be invalid")
	}
	if (Mix{InsertPct: -5, DeletePct: 105}).Valid() {
		t.Error("negative percentage should be invalid")
	}
}

func TestMixString(t *testing.T) {
	if got := MixI5D5F90.String(); got != "i5-d5-f90" {
		t.Errorf("got %q", got)
	}
	if got := MixI10D10R80.String(); got != "i10-d10-r80" {
		t.Errorf("got %q", got)
	}
}

func TestGeneratorRatios(t *testing.T) {
	g := NewGenerator(MixI5D5F90, 1000, 42)
	const n = 200000
	var counts [4]int
	for i := 0; i < n; i++ {
		op := g.Next()
		counts[op.Kind]++
		if op.Key >= 1000 {
			t.Fatalf("key %d out of range", op.Key)
		}
	}
	check := func(kind OpKind, wantPct float64) {
		got := 100 * float64(counts[kind]) / n
		if math.Abs(got-wantPct) > 1.0 {
			t.Errorf("%v: %.2f%%, want ~%.0f%%", kind, got, wantPct)
		}
	}
	check(OpInsert, 5)
	check(OpDelete, 5)
	check(OpFind, 90)
	check(OpReplace, 0)
}

func TestGeneratorReplaceMix(t *testing.T) {
	g := NewGenerator(MixI10D10R80, 100, 7)
	const n = 100000
	replaces := 0
	for i := 0; i < n; i++ {
		op := g.Next()
		if op.Kind == OpReplace {
			replaces++
			if op.Key2 >= 100 {
				t.Fatalf("replace key2 %d out of range", op.Key2)
			}
		}
	}
	if pct := 100 * float64(replaces) / n; math.Abs(pct-80) > 1.0 {
		t.Errorf("replace fraction %.2f%%, want ~80%%", pct)
	}
}

func TestSequenceGeneratorRuns(t *testing.T) {
	// The non-uniform generator must emit runs of consecutive keys.
	g := NewSequenceGenerator(MixI50D50, 1<<20, 50, 3)
	prev := g.Next().Key
	consecutive := 0
	total := 0
	for i := 0; i < 5000; i++ {
		k := g.Next().Key
		if k == prev+1 {
			consecutive++
		}
		total++
		prev = k
	}
	// Within a run of 50, 49 of 50 steps are +1; run switches break it.
	if frac := float64(consecutive) / float64(total); frac < 0.9 {
		t.Errorf("consecutive-step fraction %.2f, want > 0.9", frac)
	}
}

func TestSequenceGeneratorWrapsRange(t *testing.T) {
	g := NewSequenceGenerator(MixI50D50, 64, 50, 99)
	for i := 0; i < 10000; i++ {
		if k := g.Next().Key; k >= 64 {
			t.Fatalf("key %d escaped range", k)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := NewGenerator(MixI50D50, 1000, 5)
	b := NewGenerator(MixI50D50, 1000, 5)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewGenerator(MixI50D50, 1000, 6)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same > 100 {
		t.Errorf("different seeds produced %d/1000 identical ops", same)
	}
}

func TestOpKindString(t *testing.T) {
	if OpInsert.String() != "insert" || OpReplace.String() != "replace" {
		t.Error("OpKind.String broken")
	}
	if OpKind(9).String() == "" {
		t.Error("unknown OpKind should render")
	}
}

// Package workload generates the operation streams of the paper's
// evaluation (Section V): operation mixes like i5-d5-f90 over uniformly
// random keys in a range, the non-uniform "runs of 50 consecutive keys"
// pattern of Figure 11, and replace-heavy mixes for Figure 10.
package workload

import "fmt"

// OpKind is one of the four set operations.
type OpKind uint8

// Operations in a workload stream.
const (
	OpInsert OpKind = iota
	OpDelete
	OpFind
	OpReplace
)

func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpFind:
		return "find"
	case OpReplace:
		return "replace"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Mix is an operation ratio in percent; the paper writes it i5-d5-f90.
type Mix struct {
	InsertPct  int
	DeletePct  int
	FindPct    int
	ReplacePct int
}

// The operation mixes used by the paper's experiments.
var (
	MixI5D5F90   = Mix{InsertPct: 5, DeletePct: 5, FindPct: 90}
	MixI50D50    = Mix{InsertPct: 50, DeletePct: 50}
	MixI15D15F70 = Mix{InsertPct: 15, DeletePct: 15, FindPct: 70}
	MixI10D10R80 = Mix{InsertPct: 10, DeletePct: 10, ReplacePct: 80}
)

// String renders the mix in the paper's notation.
func (m Mix) String() string {
	s := fmt.Sprintf("i%d-d%d-f%d", m.InsertPct, m.DeletePct, m.FindPct)
	if m.ReplacePct > 0 {
		s = fmt.Sprintf("i%d-d%d-r%d", m.InsertPct, m.DeletePct, m.ReplacePct)
	}
	return s
}

// Valid reports whether the percentages sum to 100.
func (m Mix) Valid() bool {
	return m.InsertPct >= 0 && m.DeletePct >= 0 && m.FindPct >= 0 && m.ReplacePct >= 0 &&
		m.InsertPct+m.DeletePct+m.FindPct+m.ReplacePct == 100
}

// Op is one generated operation. Key2 is used by replaces only.
type Op struct {
	Kind OpKind
	Key  uint64
	Key2 uint64
}

// rng is a splitmix64 PRNG: tiny, allocation-free and independent per
// goroutine, so workload generation never becomes a contention point —
// essential when the generator sits inside a throughput benchmark loop.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	x := r.state
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Generator produces an endless operation stream. Generators are NOT safe
// for concurrent use; give each worker its own (NewGenerator with
// distinct seeds).
type Generator struct {
	mix      Mix
	keyRange uint64
	rng      rng

	// Non-uniform mode (Figure 11): operations walk runs of seqLen
	// consecutive keys starting at a random base.
	seqLen  uint64
	seqBase uint64
	seqPos  uint64
}

// NewGenerator returns a uniform-key generator over [0, keyRange).
func NewGenerator(mix Mix, keyRange uint64, seed uint64) *Generator {
	return &Generator{mix: mix, keyRange: keyRange, rng: rng{state: seed}}
}

// NewSequenceGenerator returns the paper's non-uniform generator:
// "processes performed operations on sequences of 50 consecutive keys,
// starting from a randomly chosen key" (seqLen = 50 in Figure 11).
func NewSequenceGenerator(mix Mix, keyRange, seqLen, seed uint64) *Generator {
	g := NewGenerator(mix, keyRange, seed)
	g.seqLen = seqLen
	g.seqPos = seqLen // force a fresh base on first use
	return g
}

// Next returns the next operation.
func (g *Generator) Next() Op {
	k := g.nextKey()
	switch p := int(g.rng.next() % 100); {
	case p < g.mix.InsertPct:
		return Op{Kind: OpInsert, Key: k}
	case p < g.mix.InsertPct+g.mix.DeletePct:
		return Op{Kind: OpDelete, Key: k}
	case p < g.mix.InsertPct+g.mix.DeletePct+g.mix.FindPct:
		return Op{Kind: OpFind, Key: k}
	default:
		return Op{Kind: OpReplace, Key: k, Key2: g.nextKey()}
	}
}

func (g *Generator) nextKey() uint64 {
	if g.seqLen == 0 {
		return g.rng.next() % g.keyRange
	}
	if g.seqPos >= g.seqLen {
		g.seqBase = g.rng.next() % g.keyRange
		g.seqPos = 0
	}
	k := (g.seqBase + g.seqPos) % g.keyRange
	g.seqPos++
	return k
}

// KeyRange returns the generator's key range.
func (g *Generator) KeyRange() uint64 { return g.keyRange }

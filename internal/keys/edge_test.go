package keys

import (
	"testing"
	"testing/quick"
)

// Edge-case tests complementing the main suites: word-boundary handling
// in Bitstring and the derived properties the tries rely on.

func TestBitstringPrefixBeyondLength(t *testing.T) {
	b := mustParse(t, "1010")
	if got := b.Prefix(99); !got.Equal(b) {
		t.Errorf("Prefix longer than string must return the string itself, got %q", got)
	}
	if got := b.Prefix(0); got.Len() != 0 {
		t.Errorf("Prefix(0) must be empty, got %q", got)
	}
}

func TestBitstringPrefixCanonicalTail(t *testing.T) {
	// A prefix cutting mid-word must zero the tail bits so structural
	// equality keeps working.
	b := mustParse(t, "1111111111")
	p := b.Prefix(3)
	q := mustParse(t, "111")
	if !p.Equal(q) {
		t.Errorf("Prefix(3) = %q not structurally equal to parsed %q", p, q)
	}
	if !p.IsPrefixOf(b) {
		t.Error("prefix must be a prefix of its source")
	}
}

func TestBitstringCompareWordBoundary(t *testing.T) {
	// 64 equal bits followed by a differing bit.
	base := ""
	for i := 0; i < 64; i++ {
		base += "1"
	}
	a := mustParse(t, base+"0")
	b := mustParse(t, base+"1")
	c := mustParse(t, base)
	if a.Compare(b) != -1 || b.Compare(a) != 1 {
		t.Error("Compare across word boundary wrong")
	}
	if c.Compare(a) != -1 {
		t.Error("proper prefix must compare below its extension")
	}
}

func TestBitstringPropertyPrefixConsistency(t *testing.T) {
	f := func(raw []byte, cut uint16) bool {
		b := EncodeString(raw)
		n := uint32(cut) % (b.Len() + 1)
		p := b.Prefix(n)
		if p.Len() != n {
			return false
		}
		if !p.IsPrefixOf(b) {
			return false
		}
		// Bits of the prefix agree with the source.
		for i := uint32(0); i < n; i++ {
			if p.Bit(i) != b.Bit(i) {
				return false
			}
		}
		// Compare is consistent with prefix order.
		return p.Compare(b) <= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCommonPrefixIsSymmetricAndMaximal(t *testing.T) {
	f := func(x, y []byte) bool {
		a, b := EncodeString(x), EncodeString(y)
		cp := a.CommonPrefix(b)
		if !cp.Equal(b.CommonPrefix(a)) {
			return false
		}
		if !cp.IsPrefixOf(a) || !cp.IsPrefixOf(b) {
			return false
		}
		// Maximality: the next bit differs (when both strings go on).
		if cp.Len() < a.Len() && cp.Len() < b.Len() {
			return a.Bit(cp.Len()) != b.Bit(cp.Len())
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDummiesBoundTheKeySpace(t *testing.T) {
	for _, w := range []uint32{1, 8, 32, 63} {
		lo, hi := DummyMin(w), DummyMax(w)
		if lo != 0 {
			t.Errorf("width %d: DummyMin = %#x", w, lo)
		}
		if hi != Mask(KeyLen(w)) {
			t.Errorf("width %d: DummyMax = %#x", w, hi)
		}
		if e := Encode(0, w); e <= lo || e >= hi {
			t.Errorf("width %d: Encode(0) = %#x not strictly inside dummies", w, e)
		}
	}
}

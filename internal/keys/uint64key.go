package keys

// Uint64Key is the fixed-width key/label type of the paper's core trie:
// a binary string of at most 64 bits stored left-aligned in a single
// word, canonical (zero beyond the length). It implements Key[Uint64Key]
// with pure value arithmetic — no method allocates — which is what keeps
// the fixed-width instantiation's search wait-free and allocation-free
// through the generic engine.
type Uint64Key struct {
	bits uint64
	n    uint32
}

// MakeUint64Key builds a label from left-aligned canonical bits and a
// length. The caller must ensure bits are zero beyond n.
func MakeUint64Key(bits uint64, plen uint32) Uint64Key {
	return Uint64Key{bits: bits, n: plen}
}

// EncodeUint64 maps a user key of the given width into the trie's
// internal key space as a full-length Uint64Key (see Encode for the
// k -> k+1 shift that frees the dummy strings).
func EncodeUint64(k uint64, width uint32) Uint64Key {
	return Uint64Key{bits: Encode(k, width), n: KeyLen(width)}
}

// DecodeUint64 inverts EncodeUint64 for full-length keys.
func DecodeUint64(k Uint64Key, width uint32) uint64 {
	return Decode(k.bits, width)
}

// Uint64DummyMin returns the 0^ℓ dummy key for the given width.
func Uint64DummyMin(width uint32) Uint64Key {
	return Uint64Key{bits: DummyMin(width), n: KeyLen(width)}
}

// Uint64DummyMax returns the 1^ℓ dummy key for the given width.
func Uint64DummyMax(width uint32) Uint64Key {
	return Uint64Key{bits: DummyMax(width), n: KeyLen(width)}
}

// Bits returns the left-aligned label bits (for width-aware decoding and
// diagnostics in the fixed-width instantiation).
func (k Uint64Key) Bits() uint64 { return k.bits }

// Bit returns the i-th bit of the string.
func (k Uint64Key) Bit(i uint32) int { return BitAt(k.bits, i) }

// Len returns the length of the string in bits.
func (k Uint64Key) Len() uint32 { return k.n }

// Equal reports whether two strings are identical.
func (k Uint64Key) Equal(o Uint64Key) bool { return k == o }

// IsPrefixOf reports whether k is a prefix of o.
func (k Uint64Key) IsPrefixOf(o Uint64Key) bool {
	return k.n <= o.n && IsPrefix(k.bits, k.n, o.bits)
}

// CommonPrefix returns the longest common prefix of k and o.
func (k Uint64Key) CommonPrefix(o Uint64Key) Uint64Key {
	cpl := min(CommonPrefixLen(k.bits, o.bits), k.n, o.n)
	return Uint64Key{bits: k.bits & Mask(cpl), n: cpl}
}

// Compare orders labels prefix-first lexicographically. For canonical
// left-aligned labels this is exactly (bits, length) lexicographic:
// zero-padding makes the word comparison agree with bitwise comparison
// up to the shorter length, and equal words mean one label is a prefix
// of the other, so the shorter sorts first.
func (k Uint64Key) Compare(o Uint64Key) int {
	switch {
	case k.bits < o.bits:
		return -1
	case k.bits > o.bits:
		return 1
	case k.n < o.n:
		return -1
	case k.n > o.n:
		return 1
	}
	return 0
}

// Digit returns the i-th s-bit digit (see Key.Digit). One shift-mask on
// the left-aligned word: shifting the digit's first bit to the MSB and
// the word down to the digit's (possibly partial) width.
func (k Uint64Key) Digit(i, s uint32) int {
	pos := i * s
	w := min(s, k.n-pos)
	return int(k.bits << pos >> (64 - w))
}

// CommonDigitPrefix returns the longest common prefix floored to a whole
// number of s-bit digits (see Key.CommonDigitPrefix).
func (k Uint64Key) CommonDigitPrefix(o Uint64Key, s uint32) Uint64Key {
	cpl := min(CommonPrefixLen(k.bits, o.bits), k.n, o.n)
	cpl -= cpl % s
	return Uint64Key{bits: k.bits & Mask(cpl), n: cpl}
}

// String renders the label as "0101..." text ("ε" when empty).
func (k Uint64Key) String() string { return renderLabel(k) }

package keys

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMask(t *testing.T) {
	cases := []struct {
		n    uint32
		want uint64
	}{
		{0, 0},
		{1, 0x8000000000000000},
		{4, 0xf000000000000000},
		{32, 0xffffffff00000000},
		{63, 0xfffffffffffffffe},
		{64, 0xffffffffffffffff},
	}
	for _, c := range cases {
		if got := Mask(c.n); got != c.want {
			t.Errorf("Mask(%d) = %#x, want %#x", c.n, got, c.want)
		}
	}
}

func TestBitAt(t *testing.T) {
	b := uint64(0xa000000000000000) // 1010...
	want := []int{1, 0, 1, 0}
	for i, w := range want {
		if got := BitAt(b, uint32(i)); got != w {
			t.Errorf("BitAt(%#x, %d) = %d, want %d", b, i, got, w)
		}
	}
	if got := BitAt(uint64(1), 63); got != 1 {
		t.Errorf("BitAt(1, 63) = %d, want 1", got)
	}
}

func TestIsPrefix(t *testing.T) {
	// Label "10" (length 2) is a prefix of anything starting with 10.
	label := uint64(0x8000000000000000)
	if !IsPrefix(label, 2, 0x8000000000000000) {
		t.Error("10 should be a prefix of 10...0")
	}
	if !IsPrefix(label, 2, 0xbfffffffffffffff) {
		t.Error("10 should be a prefix of 1011...1")
	}
	if IsPrefix(label, 2, 0xc000000000000000) {
		t.Error("10 should not be a prefix of 11...")
	}
	if !IsPrefix(0, 0, 0xdeadbeef) {
		t.Error("empty label is a prefix of everything")
	}
}

func TestCommonPrefixLen(t *testing.T) {
	if got := CommonPrefixLen(0, 0); got != 64 {
		t.Errorf("CommonPrefixLen(0,0) = %d, want 64", got)
	}
	if got := CommonPrefixLen(0, 1); got != 63 {
		t.Errorf("CommonPrefixLen(0,1) = %d, want 63", got)
	}
	if got := CommonPrefixLen(0x8000000000000000, 0); got != 0 {
		t.Errorf("diff in first bit: got %d, want 0", got)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, width := range []uint32{1, 8, 20, 32, 63} {
		maxKey := uint64(1)<<width - 1
		for _, k := range []uint64{0, 1, maxKey / 2, maxKey} {
			e := Encode(k, width)
			if got := Decode(e, width); got != k {
				t.Errorf("width %d: Decode(Encode(%d)) = %d", width, k, got)
			}
			if e == DummyMin(width) || e == DummyMax(width) {
				t.Errorf("width %d: Encode(%d) collides with a dummy", width, k)
			}
		}
	}
}

func TestEncodeOrderPreserving(t *testing.T) {
	const width = 20
	f := func(a, b uint64) bool {
		a %= 1 << width
		b %= 1 << width
		ea, eb := Encode(a, width), Encode(b, width)
		return (a < b) == (ea < eb) && (a == b) == (ea == eb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeBetweenDummies(t *testing.T) {
	const width = 16
	f := func(k uint64) bool {
		k %= 1 << width
		e := Encode(k, width)
		return e > DummyMin(width) && e < DummyMax(width)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInRange(t *testing.T) {
	if !InRange(255, 8) || InRange(256, 8) {
		t.Error("InRange width 8 boundary wrong")
	}
	if !InRange(^uint64(0), 64) {
		t.Error("InRange width 64 should accept everything")
	}
}

func TestPrefixBitConsistency(t *testing.T) {
	// For random keys a != b, the bit at position CommonPrefixLen differs.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a, b := rng.Uint64(), rng.Uint64()
		if a == b {
			continue
		}
		cpl := CommonPrefixLen(a, b)
		if BitAt(a, cpl) == BitAt(b, cpl) {
			t.Fatalf("bit %d of %#x and %#x should differ", cpl, a, b)
		}
		if a&Mask(cpl) != b&Mask(cpl) {
			t.Fatalf("prefix of length %d of %#x and %#x should match", cpl, a, b)
		}
	}
}

package keys

import "strings"

// Bitstring is an immutable, arbitrary-length binary string used by the
// variable-length-key Patricia trie (internal/strtrie). Bits are stored
// left-aligned in 64-bit words: bit i of the string is bit (63 - i%64) of
// word i/64. Unused trailing bits of the last word are zero, so two equal
// strings are structurally equal word-for-word ("canonical form").
//
// The type implements the encoding of the paper's Section VI: to store
// unbounded-length binary strings, each source bit is encoded as two bits
// (0 -> 01, 1 -> 10) and the string is terminated with 11. Every encoded
// key is then strictly between 0^* and 1^*, so two dummy keys outside the
// encoded space can anchor the trie.
type Bitstring struct {
	w []uint64
	n uint32 // length in bits
}

// BitstringFromBits builds a Bitstring from a slice of 0/1 values, mainly
// for tests.
func BitstringFromBits(bs []int) Bitstring {
	var b bitstringBuilder
	for _, v := range bs {
		b.append(v != 0)
	}
	return b.done()
}

// ParseBitstring builds a Bitstring from a textual "0101..." string,
// mainly for tests. Any rune other than '0' is treated as a one bit only if
// it is '1'; other runes are rejected by returning ok=false.
func ParseBitstring(s string) (Bitstring, bool) {
	var b bitstringBuilder
	for _, r := range s {
		switch r {
		case '0':
			b.append(false)
		case '1':
			b.append(true)
		default:
			return Bitstring{}, false
		}
	}
	return b.done(), true
}

// EncodeString encodes an arbitrary byte string as a Bitstring using the
// paper's Section VI scheme applied bit-wise to the bytes: every bit b of s
// becomes 01 (b=0) or 10 (b=1), and the terminator 11 is appended. The
// result has length 16*len(s)+2 bits and is prefix-free: no encoded key is
// a prefix of another, which is what makes variable-length keys safe in a
// Patricia trie.
func EncodeString(s []byte) Bitstring {
	b := bitstringBuilder{w: make([]uint64, 0, (16*len(s)+2+63)/64)}
	for _, c := range s {
		for i := 7; i >= 0; i-- {
			if c>>uint(i)&1 == 1 {
				b.append(true)
				b.append(false)
			} else {
				b.append(false)
				b.append(true)
			}
		}
	}
	b.append(true)
	b.append(true)
	return b.done()
}

// DecodeString inverts EncodeString. It returns ok=false if b is not a
// valid encoding.
func DecodeString(b Bitstring) ([]byte, bool) {
	if b.n < 2 || b.n%2 != 0 {
		return nil, false
	}
	nPairs := b.n/2 - 1
	if nPairs%8 != 0 {
		return nil, false
	}
	out := make([]byte, nPairs/8)
	for i := uint32(0); i < nPairs; i++ {
		hi, lo := b.Bit(2*i), b.Bit(2*i+1)
		switch {
		case hi == 1 && lo == 0:
			out[i/8] |= 1 << (7 - i%8)
		case hi == 0 && lo == 1:
			// zero bit: nothing to set
		default:
			return nil, false
		}
	}
	if b.Bit(b.n-2) != 1 || b.Bit(b.n-1) != 1 {
		return nil, false
	}
	return out, true
}

// StrDummyMin and StrDummyMax return the two dummy keys anchoring a
// variable-length trie. Per Section VI, every encoded key is greater than
// "00" and smaller than "111", so those strings are safe dummies.
func StrDummyMin() Bitstring { b, _ := ParseBitstring("00"); return b }

// StrDummyMax returns the upper dummy key "111".
func StrDummyMax() Bitstring { b, _ := ParseBitstring("111"); return b }

// Len returns the length of the string in bits.
func (b Bitstring) Len() uint32 { return b.n }

// Bit returns the i-th bit (0-indexed from the start of the string).
func (b Bitstring) Bit(i uint32) int {
	return int(b.w[i/64] >> (63 - i%64) & 1)
}

// Equal reports whether two bit strings are identical.
func (b Bitstring) Equal(o Bitstring) bool {
	if b.n != o.n {
		return false
	}
	for i := range b.w {
		if b.w[i] != o.w[i] {
			return false
		}
	}
	return true
}

// IsPrefixOf reports whether b is a prefix of o.
func (b Bitstring) IsPrefixOf(o Bitstring) bool {
	if b.n > o.n {
		return false
	}
	if b.n == 0 {
		return true
	}
	full := int(b.n / 64)
	for i := 0; i < full; i++ {
		if b.w[i] != o.w[i] {
			return false
		}
	}
	if rem := b.n % 64; rem != 0 {
		m := Mask(rem)
		return b.w[full] == o.w[full]&m
	}
	return true
}

// CommonPrefix returns the longest common prefix of b and o.
func (b Bitstring) CommonPrefix(o Bitstring) Bitstring {
	n := min(b.n, o.n)
	var cpl uint32
	for cpl < n {
		i := cpl / 64
		x := b.w[i] ^ o.w[i]
		if x == 0 {
			cpl = min((i+1)*64, n)
			continue
		}
		cpl = min(i*64+CommonPrefixLen(b.w[i], o.w[i]), n)
		break
	}
	return b.Prefix(cpl)
}

// Prefix returns the first n bits of b as a canonical Bitstring.
func (b Bitstring) Prefix(n uint32) Bitstring {
	if n >= b.n {
		return b
	}
	words := int((n + 63) / 64)
	w := make([]uint64, words)
	copy(w, b.w[:words])
	if rem := n % 64; rem != 0 {
		w[words-1] &= Mask(rem)
	}
	return Bitstring{w: w, n: n}
}

// Digit returns the i-th s-bit digit (see Key.Digit), word-at-a-time: the
// digit's bits are gathered into the top of one 64-bit window, pulling
// from the following word when the digit straddles a word boundary.
func (b Bitstring) Digit(i, s uint32) int {
	pos := i * s
	w := min(s, b.n-pos)
	wi, off := pos/64, pos%64
	top := b.w[wi] << off
	if off+w > 64 {
		top |= b.w[wi+1] >> (64 - off)
	}
	return int(top >> (64 - w))
}

// CommonDigitPrefix returns the longest common prefix floored to a whole
// number of s-bit digits (see Key.CommonDigitPrefix).
func (b Bitstring) CommonDigitPrefix(o Bitstring, s uint32) Bitstring {
	n := min(b.n, o.n)
	var cpl uint32
	for cpl < n {
		i := cpl / 64
		if b.w[i] == o.w[i] {
			cpl = min((i+1)*64, n)
			continue
		}
		cpl = min(i*64+CommonPrefixLen(b.w[i], o.w[i]), n)
		break
	}
	return b.Prefix(cpl - cpl%s)
}

// String renders the bit string as "0101..." text.
func (b Bitstring) String() string {
	var sb strings.Builder
	sb.Grow(int(b.n))
	for i := uint32(0); i < b.n; i++ {
		sb.WriteByte(byte('0' + b.Bit(i)))
	}
	return sb.String()
}

// Compare orders bit strings lexicographically, with a proper prefix
// ordered before any of its extensions. It returns -1, 0 or +1.
func (b Bitstring) Compare(o Bitstring) int {
	n := min(b.n, o.n)
	for i := uint32(0); i < (n+63)/64; i++ {
		lim := min(n-i*64, 64)
		m := Mask(lim)
		x, y := b.w[i]&m, o.w[i]&m
		if x != y {
			if x < y {
				return -1
			}
			return 1
		}
	}
	switch {
	case b.n < o.n:
		return -1
	case b.n > o.n:
		return 1
	default:
		return 0
	}
}

// bitstringBuilder incrementally assembles a Bitstring.
type bitstringBuilder struct {
	w []uint64
	n uint32
}

func (b *bitstringBuilder) append(one bool) {
	if int(b.n/64) == len(b.w) {
		b.w = append(b.w, 0)
	}
	if one {
		b.w[b.n/64] |= 1 << (63 - b.n%64)
	}
	b.n++
}

func (b *bitstringBuilder) done() Bitstring {
	return Bitstring{w: b.w, n: b.n}
}

package keys

import (
	"bytes"
	"testing"
)

// Native Go fuzz targets for the key-encoding layer. CI runs each for a
// short burst (-fuzztime 10s); locally, `go test -fuzz=FuzzX` digs
// deeper. The properties fuzzed here are the ones the tries' correctness
// rests on: round-trip fidelity and prefix-freedom of the Section VI
// string encoding, and bijectivity plus order preservation of the
// Morton encodings.

// FuzzEncodeStringRoundTrip: decode(encode(s)) == s for every byte
// string, and the encoding has the documented shape (16·len+2 bits).
func FuzzEncodeStringRoundTrip(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte{0})
	f.Add([]byte{0xff})
	f.Add([]byte("hello"))
	f.Add(bytes.Repeat([]byte{0xa5}, 40)) // cross word boundaries
	f.Fuzz(func(t *testing.T, s []byte) {
		enc := EncodeString(s)
		if want := uint32(16*len(s) + 2); enc.Len() != want {
			t.Fatalf("EncodeString(%x).Len() = %d, want %d", s, enc.Len(), want)
		}
		dec, ok := DecodeString(enc)
		if !ok {
			t.Fatalf("DecodeString rejected a valid encoding of %x", s)
		}
		if !bytes.Equal(dec, s) {
			t.Fatalf("round trip %x -> %x", s, dec)
		}
	})
}

// FuzzEncodeStringPrefixFree: the encoded key space is prefix-free —
// no encoding is a proper prefix of another — which is the property
// that makes variable-length keys safe in a Patricia trie. The dummies
// 00 and 111 must also never collide with an encoding.
func FuzzEncodeStringPrefixFree(f *testing.F) {
	f.Add([]byte("a"), []byte("ab"))
	f.Add([]byte{0x01}, []byte{0x01, 0x00})
	f.Add([]byte(nil), []byte{0x00})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		ea, eb := EncodeString(a), EncodeString(b)
		if bytes.Equal(a, b) {
			if !ea.Equal(eb) {
				t.Fatal("equal strings must encode equally")
			}
			return
		}
		if ea.IsPrefixOf(eb) || eb.IsPrefixOf(ea) {
			t.Fatalf("encodings of %x and %x are prefix-related", a, b)
		}
		if len(a) > 0 {
			if StrDummyMin().IsPrefixOf(ea) || !(StrDummyMin().Compare(ea) < 0 && ea.Compare(StrDummyMax()) < 0) {
				t.Fatalf("encoding of %x not strictly between the dummies", a)
			}
		}
	})
}

// FuzzMortonRoundTrip: Interleave2/Deinterleave2 are mutually inverse
// bijections (both directions), ditto the 3-D pair on its 21-bit
// domain, and EncodeMorton/DecodeMorton round-trips with order
// preserved.
func FuzzMortonRoundTrip(f *testing.F) {
	f.Add(uint32(0), uint32(0), uint64(0))
	f.Add(^uint32(0), ^uint32(0), ^uint64(0))
	f.Add(uint32(0xdeadbeef), uint32(0x12345678), uint64(1)<<63)
	f.Fuzz(func(t *testing.T, x, y uint32, m uint64) {
		// Point -> code -> point.
		gx, gy := Deinterleave2(Interleave2(x, y))
		if gx != x || gy != y {
			t.Fatalf("Deinterleave2(Interleave2(%d,%d)) = (%d,%d)", x, y, gx, gy)
		}
		// Code -> point -> code.
		mx, my := Deinterleave2(m)
		if got := Interleave2(mx, my); got != m {
			t.Fatalf("Interleave2(Deinterleave2(%#x)) = %#x", m, got)
		}
		// 3-D on the 21-bit domain.
		x3, y3, z3 := x&0x1fffff, y&0x1fffff, uint32(m)&0x1fffff
		gx3, gy3, gz3 := Deinterleave3(Interleave3(x3, y3, z3))
		if gx3 != x3 || gy3 != y3 || gz3 != z3 {
			t.Fatalf("3-D round trip (%d,%d,%d) -> (%d,%d,%d)", x3, y3, z3, gx3, gy3, gz3)
		}
		// MortonKey encode/decode and order.
		if got := DecodeMorton(EncodeMorton(m)); got != m {
			t.Fatalf("DecodeMorton(EncodeMorton(%#x)) = %#x", m, got)
		}
		m2 := Interleave2(x, y)
		wantCmp := 0
		if m < m2 {
			wantCmp = -1
		} else if m > m2 {
			wantCmp = 1
		}
		if got := EncodeMorton(m).Compare(EncodeMorton(m2)); got != wantCmp {
			t.Fatalf("MortonKey order of %#x vs %#x = %d, want %d", m, m2, got, wantCmp)
		}
	})
}

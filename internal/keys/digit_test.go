package keys

import "testing"

// digitSpans are the spans the engine instantiates (s=1 must agree with
// Bit; s=4 is the PAT-K default; 6 is the widest the fuzz battery uses).
var digitSpans = []uint32{1, 2, 3, 4, 5, 6}

// checkDigits asserts every digit of k under span s against the
// bit-by-bit reference, and that CommonDigitPrefix(o, s) is the floored
// CommonPrefix.
func checkDigits[K Key[K]](t *testing.T, name string, k, o K, s uint32) {
	t.Helper()
	for pos, i := uint32(0), uint32(0); pos < k.Len(); pos, i = pos+s, i+1 {
		got, want := k.Digit(i, s), DigitRef(k, i, s)
		if got != want {
			t.Fatalf("%s: Digit(%d, %d) = %d, want %d (key %v)", name, i, s, got, want, k)
		}
	}
	cp := k.CommonPrefix(o)
	want := cp.Len() - cp.Len()%s
	dp := k.CommonDigitPrefix(o, s)
	if dp.Len() != want {
		t.Fatalf("%s: CommonDigitPrefix(s=%d) has length %d, want %d (keys %v / %v)",
			name, s, dp.Len(), want, k, o)
	}
	if !dp.IsPrefixOf(k) || !dp.IsPrefixOf(o) {
		t.Fatalf("%s: CommonDigitPrefix(s=%d) = %v is not a prefix of both %v and %v",
			name, s, dp, k, o)
	}
}

func TestDigitKnownValues(t *testing.T) {
	// 1011 0111 001 as a Uint64Key: 4-bit digits 0b1011=11, 0b0111=7,
	// and the partial 3-bit tail 0b001=1.
	k := MakeUint64Key(0b10110111001<<53, 11)
	for i, want := range []int{11, 7, 1} {
		if got := k.Digit(uint32(i), 4); got != want {
			t.Fatalf("Digit(%d, 4) = %d, want %d", i, got, want)
		}
	}
	if got := k.Digit(3, 1); got != 1 {
		t.Fatalf("Digit(3, 1) = %d, want 1 (Bit fast-path agreement)", got)
	}
}

func TestDigitWordStraddle(t *testing.T) {
	// A Bitstring digit straddling the 64-bit word boundary: bits
	// 62..65 of a 70-bit string.
	bits := make([]int, 70)
	bits[62], bits[63], bits[64], bits[65] = 1, 0, 1, 1
	b := BitstringFromBits(bits)
	// span 4 => digit 15 covers bits 60..63, digit 16 bits 64..67; use
	// span 3 so digit 21 covers bits 63..65... simpler: check all.
	for _, s := range digitSpans {
		checkDigits(t, "bitstring-straddle", b, b.Prefix(64), s)
	}

	// MortonKey's 65th bit (the w0/w1 boundary) — including the
	// EncodeMorton(2^64-1) carry corner where bit 64 is set via w1.
	for _, m := range []uint64{0, 1, ^uint64(0), ^uint64(0) - 1, 1 << 63} {
		k := EncodeMorton(m)
		for _, s := range digitSpans {
			checkDigits(t, "morton-boundary", k, EncodeMorton(m^1), s)
		}
	}
}

// FuzzDigitAgreement checks the per-type Digit fast paths
// (Uint64Key shift-mask, Bitstring word-at-a-time, MortonKey two-word
// splice) against the bit-by-bit DigitRef oracle, across every span the
// engine uses, plus the CommonDigitPrefix flooring contract.
func FuzzDigitAgreement(f *testing.F) {
	f.Add(uint64(0), uint64(0), []byte(""), uint8(20))
	f.Add(uint64(1)<<62, uint64(3)<<61, []byte("ab"), uint8(63))
	f.Add(^uint64(0), ^uint64(0)-1, []byte("straddle!"), uint8(59))
	f.Fuzz(func(t *testing.T, a, b uint64, s []byte, width uint8) {
		w := uint32(width%MaxWidth) + 1
		ka := EncodeUint64(a&(1<<w-1), w)
		kb := EncodeUint64(b&(1<<w-1), w)
		ma, mb := EncodeMorton(a), EncodeMorton(b)
		if len(s) > 64 {
			s = s[:64]
		}
		ba := EncodeString(s)
		bb := StrDummyMax()
		if len(s) > 0 {
			bb = EncodeString(s[1:])
		}
		for _, span := range digitSpans {
			checkDigits(t, "uint64", ka, kb, span)
			checkDigits(t, "morton", ma, mb, span)
			checkDigits(t, "bitstring", ba, bb, span)
			// Labels (non-full-length keys) exercise the partial tail at
			// arbitrary positions.
			checkDigits(t, "uint64-label", ka.CommonPrefix(kb), ka, span)
			checkDigits(t, "morton-label", ma.CommonPrefix(mb), ma, span)
			checkDigits(t, "bitstring-label", ba.CommonPrefix(bb), ba, span)
		}
	})
}

package keys

import (
	"bytes"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, s string) Bitstring {
	t.Helper()
	b, ok := ParseBitstring(s)
	if !ok {
		t.Fatalf("ParseBitstring(%q) failed", s)
	}
	return b
}

func TestParseAndString(t *testing.T) {
	for _, s := range []string{"", "0", "1", "0101", "111000111", "10"} {
		if got := mustParse(t, s).String(); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
	if _, ok := ParseBitstring("012"); ok {
		t.Error("ParseBitstring should reject non-binary runes")
	}
}

func TestParseLong(t *testing.T) {
	// Cross the 64-bit word boundary.
	s := ""
	for i := 0; i < 130; i++ {
		if i%3 == 0 {
			s += "1"
		} else {
			s += "0"
		}
	}
	b := mustParse(t, s)
	if b.Len() != 130 {
		t.Fatalf("len = %d, want 130", b.Len())
	}
	if b.String() != s {
		t.Fatalf("round trip mismatch")
	}
	for i := uint32(0); i < 130; i++ {
		want := 0
		if i%3 == 0 {
			want = 1
		}
		if b.Bit(i) != want {
			t.Fatalf("bit %d = %d, want %d", i, b.Bit(i), want)
		}
	}
}

func TestIsPrefixOf(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"", "0", true},
		{"0", "0", true},
		{"0", "01", true},
		{"01", "0", false},
		{"01", "011", true},
		{"01", "001", false},
		{"1", "0", false},
	}
	for _, c := range cases {
		a, b := mustParse(t, c.a), mustParse(t, c.b)
		if got := a.IsPrefixOf(b); got != c.want {
			t.Errorf("%q.IsPrefixOf(%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	long := mustParse(t, "101010101010101010101010101010101010101010101010101010101010101010")
	if !long.Prefix(64).IsPrefixOf(long) {
		t.Error("64-bit prefix should be a prefix across word boundary")
	}
}

func TestCommonPrefixBitstring(t *testing.T) {
	cases := []struct {
		a, b, want string
	}{
		{"", "", ""},
		{"0", "1", ""},
		{"01", "00", "0"},
		{"0110", "0111", "011"},
		{"0110", "0110", "0110"},
		{"0110", "011", "011"},
	}
	for _, c := range cases {
		a, b := mustParse(t, c.a), mustParse(t, c.b)
		if got := a.CommonPrefix(b).String(); got != c.want {
			t.Errorf("CommonPrefix(%q,%q) = %q, want %q", c.a, c.b, got, c.want)
		}
	}
}

func TestCompare(t *testing.T) {
	ordered := []string{"", "0", "00", "01", "1", "10", "11", "111"}
	for i, a := range ordered {
		for j, b := range ordered {
			got := mustParse(t, a).Compare(mustParse(t, b))
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%q,%q) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestEncodeStringRoundTrip(t *testing.T) {
	f := func(s []byte) bool {
		got, ok := DecodeString(EncodeString(s))
		return ok && bytes.Equal(got, s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeStringPrefixFree(t *testing.T) {
	// Section VI: no encoded key is a proper prefix of another, even when
	// the source strings are prefixes of each other.
	a := EncodeString([]byte("ab"))
	b := EncodeString([]byte("abc"))
	if a.IsPrefixOf(b) || b.IsPrefixOf(a) {
		t.Error("encoded keys must be prefix-free")
	}
}

func TestEncodeStringBetweenDummies(t *testing.T) {
	f := func(s []byte) bool {
		e := EncodeString(s)
		return StrDummyMin().Compare(e) < 0 && e.Compare(StrDummyMax()) < 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeStringRejectsGarbage(t *testing.T) {
	for _, s := range []string{"", "1", "00", "0111", "1111", "010111"} {
		b := mustParse(t, s)
		if _, ok := DecodeString(b); ok {
			t.Errorf("DecodeString(%q) should fail", s)
		}
	}
}

func TestBitstringFromBits(t *testing.T) {
	b := BitstringFromBits([]int{1, 0, 1})
	if b.String() != "101" {
		t.Errorf("got %q, want 101", b.String())
	}
}

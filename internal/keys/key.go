package keys

import "strings"

// Key is the constraint satisfied by the key/label types the shared
// update engine (internal/engine) is generic over. A Key value is an
// immutable, canonical binary string; the engine uses the same type for
// full-length keys and for the internal-node labels (prefixes) it
// derives from them.
//
// Implementations must satisfy three structural contracts the engine's
// correctness argument leans on:
//
//   - The zero value of K is the empty string (Len() == 0): it anchors
//     the root, whose label must be a prefix of every key.
//   - Values are canonical: two equal strings are Equal as Go values
//     wherever the implementation compares representations directly.
//   - Compare is the total "prefix-first lexicographic" order — bitwise
//     lexicographic, with a proper prefix ordered before any of its
//     extensions. The engine sorts flag sets with it (livelock
//     avoidance needs one global order) and drives ordered traversal
//     off it, so every instantiation inherits sorted iteration for
//     free.
//
// The three instantiations in this repository are Uint64Key
// (fixed-width integer keys, internal/core), Bitstring (the Section VI
// unbounded byte-string encoding, internal/strtrie) and MortonKey
// (65-bit Z-order point keys, internal/spatial). A new key space needs
// only this interface plus two dummy keys bounding the encoded space —
// no protocol code.
// renderLabel renders a label as "0101..." text, with "ε" for the empty
// string — the shared String implementation of the fixed-size key types.
// (Bitstring keeps its own String, whose historical contract renders the
// empty string as "".)
func renderLabel[K Key[K]](k K) string {
	n := k.Len()
	if n == 0 {
		return "ε"
	}
	var sb strings.Builder
	sb.Grow(int(n))
	for i := uint32(0); i < n; i++ {
		sb.WriteByte(byte('0' + k.Bit(i)))
	}
	return sb.String()
}

type Key[K any] interface {
	// Bit returns the i-th bit (0-indexed from the start of the
	// string); i must be < Len().
	Bit(i uint32) int
	// Len returns the length of the string in bits.
	Len() uint32
	// Equal reports whether the two strings are identical.
	Equal(K) bool
	// IsPrefixOf reports whether the receiver is a (not necessarily
	// proper) prefix of the argument.
	IsPrefixOf(K) bool
	// CommonPrefix returns the longest common prefix of the two
	// strings.
	CommonPrefix(K) K
	// Compare orders strings prefix-first lexicographically,
	// returning -1, 0 or +1.
	Compare(K) int
	// Digit returns the i-th s-bit digit of the string: the bits
	// [i*s, min((i+1)*s, Len())) read as an integer, most significant
	// bit first. The digit at the tail of a string whose length is not
	// a multiple of s is partial — fewer than s bits wide — and its
	// value ranges over [0, 2^r) for the r remaining bits. i*s must be
	// < Len(). Digit(i, 1) == Bit(i). The k-ary engine dispatches on
	// digits instead of bits, resolving s levels of the binary trie
	// with one child-array index.
	Digit(i, s uint32) int
	// CommonDigitPrefix returns the longest common prefix of the two
	// strings truncated down to a whole number of s-bit digits — the
	// label of the k-ary internal node that separates them.
	// CommonDigitPrefix(o, 1) == CommonPrefix(o).
	CommonDigitPrefix(o K, s uint32) K
}

// DigitRef is the bit-by-bit reference implementation of Key.Digit, the
// oracle the per-type fast paths are fuzzed against: it assembles the
// digit one Bit call at a time.
func DigitRef[K Key[K]](k K, i, s uint32) int {
	lo := i * s
	hi := min(lo+s, k.Len())
	d := 0
	for p := lo; p < hi; p++ {
		d = d<<1 | k.Bit(p)
	}
	return d
}

package keys

import (
	"math/rand"
	"testing"
)

// Tests of the Key-interface implementations added for the shared
// engine: Uint64Key and MortonKey. Bitstring, the third implementation,
// has its own battery in bitstring_test.go.

// Compile-time interface compliance for all three key types.
var (
	_ Key[Uint64Key] = Uint64Key{}
	_ Key[Bitstring] = Bitstring{}
	_ Key[MortonKey] = MortonKey{}
)

func TestUint64KeyBasics(t *testing.T) {
	const width = 8
	k := EncodeUint64(5, width)
	if k.Len() != 9 {
		t.Errorf("Len = %d, want 9", k.Len())
	}
	if DecodeUint64(k, width) != 5 {
		t.Errorf("decode(encode(5)) = %d", DecodeUint64(k, width))
	}
	if !k.Equal(EncodeUint64(5, width)) || k.Equal(EncodeUint64(6, width)) {
		t.Error("Equal broken")
	}

	// The zero value is the empty string and a prefix of everything.
	var empty Uint64Key
	if empty.Len() != 0 || !empty.IsPrefixOf(k) || empty.Compare(k) >= 0 {
		t.Error("zero Uint64Key must be the empty prefix, sorting first")
	}

	// Dummies bound every encoded key.
	lo, hi := Uint64DummyMin(width), Uint64DummyMax(width)
	for u := uint64(0); u < 1<<width; u++ {
		e := EncodeUint64(u, width)
		if lo.Compare(e) >= 0 || e.Compare(hi) >= 0 {
			t.Fatalf("encoded key %d not strictly inside the dummies", u)
		}
	}
}

// TestUint64KeyOrderMatchesUint64 pins that Compare over full-length
// encoded keys is exactly the numeric key order — what core's sorted
// iteration relies on.
func TestUint64KeyOrderMatchesUint64(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a, b := rng.Uint64()%1024, rng.Uint64()%1024
		ka, kb := EncodeUint64(a, 10), EncodeUint64(b, 10)
		want := 0
		if a < b {
			want = -1
		} else if a > b {
			want = 1
		}
		if got := ka.Compare(kb); got != want {
			t.Fatalf("Compare(%d, %d) = %d, want %d", a, b, got, want)
		}
	}
}

func TestUint64KeyCommonPrefix(t *testing.T) {
	a := MakeUint64Key(0b1010<<60, 4)
	b := MakeUint64Key(0b1011<<60, 4)
	cp := a.CommonPrefix(b)
	if cp.Len() != 3 || cp.Bits() != 0b101<<61 {
		t.Errorf("CommonPrefix = %v/%d", cp.Bits(), cp.Len())
	}
	// Equal inputs: the common prefix is the whole label.
	if cp2 := a.CommonPrefix(a); !cp2.Equal(a) {
		t.Errorf("CommonPrefix of equal labels = %v", cp2)
	}
	// Prefix pair: clamped to the shorter.
	p := MakeUint64Key(0b10<<62, 2)
	if cp3 := a.CommonPrefix(p); !cp3.Equal(p) {
		t.Errorf("CommonPrefix with prefix = %v", cp3)
	}
	if !p.IsPrefixOf(a) || a.IsPrefixOf(p) {
		t.Error("IsPrefixOf broken")
	}
}

func TestMortonKeyEncodeDecodeRoundTrip(t *testing.T) {
	cases := []uint64{0, 1, 2, 0x5555_5555, 1 << 63, ^uint64(0) - 1, ^uint64(0)}
	for _, m := range cases {
		k := EncodeMorton(m)
		if k.Len() != 65 {
			t.Fatalf("EncodeMorton(%#x).Len() = %d", m, k.Len())
		}
		if got := DecodeMorton(k); got != m {
			t.Fatalf("decode(encode(%#x)) = %#x", m, got)
		}
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		m := rng.Uint64()
		if got := DecodeMorton(EncodeMorton(m)); got != m {
			t.Fatalf("decode(encode(%#x)) = %#x", m, got)
		}
	}
}

// TestMortonKeyOrderMatchesCodes pins that Compare over encoded keys is
// the numeric Morton-code order — Z-order range scans depend on it —
// including at the 2^64-1 corner where the k+1 shift carries into the
// 65th bit.
func TestMortonKeyOrderMatchesCodes(t *testing.T) {
	probes := []uint64{0, 1, 2, 3, 1<<32 - 1, 1 << 32, 1 << 63, ^uint64(0) - 1, ^uint64(0)}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		probes = append(probes, rng.Uint64())
	}
	for _, a := range probes {
		for _, b := range probes {
			want := 0
			if a < b {
				want = -1
			} else if a > b {
				want = 1
			}
			if got := EncodeMorton(a).Compare(EncodeMorton(b)); got != want {
				t.Fatalf("Compare(%#x, %#x) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestMortonKeyDummiesBoundEverything(t *testing.T) {
	lo, hi := MortonDummyMin(), MortonDummyMax()
	if lo.Len() != 65 || hi.Len() != 65 {
		t.Fatal("dummies must be full length")
	}
	for _, m := range []uint64{0, 1, 1 << 63, ^uint64(0)} {
		e := EncodeMorton(m)
		if lo.Compare(e) >= 0 || e.Compare(hi) >= 0 {
			t.Fatalf("encoded code %#x not strictly inside the dummies", m)
		}
	}
	// The zero value is the empty string.
	var empty MortonKey
	if empty.Len() != 0 || !empty.IsPrefixOf(hi) {
		t.Error("zero MortonKey must be the empty prefix")
	}
}

func TestMortonKeyPrefixAcrossWordBoundary(t *testing.T) {
	// Keys differing only in the 65th bit: the codes 2^64-1 and 2^64-2
	// encode to 65-bit strings sharing a 63-bit prefix... compute and
	// check against Bit-by-bit expectations.
	a := EncodeMorton(^uint64(0))     // encodes to 1 0^64
	b := EncodeMorton(^uint64(0) - 1) // encodes to 0 1^64
	if a.Equal(b) {
		t.Fatal("distinct codes must encode distinctly")
	}
	cp := a.CommonPrefix(b)
	if cp.Len() != 0 {
		t.Fatalf("CommonPrefix of %s and %s has length %d, want 0", a, b, cp.Len())
	}

	// A 64-bit prefix of a 65-bit key crosses into the second word.
	p := a.CommonPrefix(a)
	if !p.Equal(a) {
		t.Fatal("self common prefix must be identity")
	}
	for i := uint32(0); i < 65; i++ {
		wantA := 0
		if i == 0 {
			wantA = 1
		}
		if a.Bit(i) != wantA {
			t.Fatalf("EncodeMorton(2^64-1).Bit(%d) = %d, want %d", i, a.Bit(i), wantA)
		}
		wantB := 1
		if i == 0 {
			wantB = 0
		}
		if b.Bit(i) != wantB {
			t.Fatalf("EncodeMorton(2^64-2).Bit(%d) = %d, want %d", i, b.Bit(i), wantB)
		}
	}

	if !a.IsPrefixOf(a) {
		t.Error("IsPrefixOf must be reflexive")
	}
}

package keys

// Shard routing for the Uint64Key space, used by the sharded front-end
// (internal/sharded): a width-bit user key k is routed to one of 2^s
// shards by its top s bits, and the owning shard's trie stores only the
// remaining low width-s bits. Routing on the top bits — rather than a
// hash — keeps each shard's key space a contiguous, order-preserving
// slice of the full space: shard i owns exactly
// [i << (width-s), (i+1) << (width-s)), so concatenating per-shard
// ascents in shard-index order yields the full ascending key order, and
// any two keys in the same shard keep the prefix relationship they had
// in the unsharded trie (the top s bits they share are simply factored
// out).
//
// All three helpers require 0 <= s < width (each shard keeps at least
// one key bit) and a k that fits in width bits (see InRange); the
// sharded front-end validates both before routing.

// ShardOf returns the index of the shard owning the width-bit key k:
// the value of k's top s bits.
func ShardOf(k uint64, width, s uint32) uint64 {
	return k >> (width - s)
}

// ShardRest returns the low width-s bits of k: the key the owning
// shard's trie stores in place of k.
func ShardRest(k uint64, width, s uint32) uint64 {
	return k & (1<<(width-s) - 1)
}

// ShardBase returns the smallest width-bit key owned by shard idx, so
// ShardBase(ShardOf(k, w, s), w, s) | ShardRest(k, w, s) == k.
func ShardBase(idx uint64, width, s uint32) uint64 {
	return idx << (width - s)
}

// Package keys provides the bit-string arithmetic that underlies the
// Patricia-trie implementations in this repository.
//
// A key of a binary Patricia trie is an ℓ-bit binary string. We store all
// keys and node labels left-aligned in a uint64: bit 0 of the string is the
// most significant bit of the word. A label is a (bits, length) pair whose
// bits beyond the length are zero ("canonical form"). With this layout the
// prefix tests and bit extractions of the paper's pseudo-code compile to a
// mask-and-compare or a shift.
//
// The package also provides Morton (bit-interleaved) encodings used to map
// points in the plane onto trie keys (the paper's GIS motivation for the
// replace operation), and the variable-length string encoding of the paper's
// Section VI (0 -> 01, 1 -> 10, end-of-string -> 11).
package keys

import "math/bits"

// MaxWidth is the largest supported user-key width in bits. The trie adds
// one internal bit (see Encode), so internal keys fit in a uint64.
const MaxWidth = 63

// Mask returns a uint64 whose top n bits are ones. Mask(0) == 0.
func Mask(n uint32) uint64 {
	if n == 0 {
		return 0
	}
	return ^uint64(0) << (64 - n)
}

// BitAt returns the i-th bit (0-indexed from the most significant end) of a
// left-aligned bit string. This is the "(|label|+1)-th bit" of the paper's
// pseudo-code when i is the label length.
func BitAt(b uint64, i uint32) int {
	return int((b >> (63 - i)) & 1)
}

// IsPrefix reports whether the length-plen left-aligned label pbits is a
// prefix of the left-aligned bit string b. pbits must be canonical (zero
// beyond plen).
func IsPrefix(pbits uint64, plen uint32, b uint64) bool {
	return b&Mask(plen) == pbits
}

// CommonPrefixLen returns the length of the longest common prefix of two
// left-aligned 64-bit strings (64 if they are equal).
func CommonPrefixLen(a, b uint64) uint32 {
	return uint32(bits.LeadingZeros64(a ^ b))
}

// Encode maps a user key k of the given width into the trie's internal
// left-aligned key space. The internal key length is width+1 bits and the
// mapping is k -> k+1, so user keys occupy [1, 2^width] while the all-zeros
// and all-ones strings remain free for the trie's two dummy leaves, exactly
// as the paper requires ("we assume the keys 0^ℓ and 1^ℓ cannot be elements
// of D"). Encode panics if k does not fit in width bits; the exported trie
// API validates widths and key ranges before calling it.
func Encode(k uint64, width uint32) uint64 {
	return (k + 1) << (63 - width)
}

// Decode inverts Encode.
func Decode(b uint64, width uint32) uint64 {
	return (b >> (63 - width)) - 1
}

// KeyLen returns the internal key length ℓ for a given user-key width.
func KeyLen(width uint32) uint32 { return width + 1 }

// DummyMin and DummyMax return the left-aligned labels of the two dummy
// leaves 0^ℓ and 1^ℓ for a given user-key width.
func DummyMin(width uint32) uint64 { return 0 }

// DummyMax returns the all-ones dummy key for the given width.
func DummyMax(width uint32) uint64 { return Mask(KeyLen(width)) }

// InRange reports whether k fits in width bits.
func InRange(k uint64, width uint32) bool {
	if width >= 64 {
		return true
	}
	return k < 1<<width
}

package keys

import (
	"math/rand"
	"testing"
)

// TestShardSplitRoundTrip: ShardOf/ShardRest decompose a key and
// ShardBase|ShardRest reassembles it, for a sweep of widths and shard
// bit counts.
func TestShardSplitRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, width := range []uint32{1, 2, 7, 10, 21, 32, 63} {
		for s := uint32(0); s < width && s <= 8; s++ {
			for trial := 0; trial < 200; trial++ {
				k := rng.Uint64()
				if width < 64 {
					k %= 1 << width
				}
				idx := ShardOf(k, width, s)
				rest := ShardRest(k, width, s)
				if idx >= 1<<s {
					t.Fatalf("width=%d s=%d: ShardOf(%d) = %d out of range", width, s, k, idx)
				}
				if rest >= 1<<(width-s) {
					t.Fatalf("width=%d s=%d: ShardRest(%d) = %d out of range", width, s, k, rest)
				}
				if got := ShardBase(idx, width, s) | rest; got != k {
					t.Fatalf("width=%d s=%d: base|rest = %d, want %d", width, s, got, k)
				}
			}
		}
	}
}

// TestShardBoundaries pins the contiguous ownership contract: shard idx
// owns exactly [ShardBase(idx), ShardBase(idx+1)), so the base key maps
// to idx, its predecessor to idx-1, and the last key of the shard back
// to idx.
func TestShardBoundaries(t *testing.T) {
	const width, s = 10, 3
	span := uint64(1) << (width - s)
	for idx := uint64(0); idx < 1<<s; idx++ {
		base := ShardBase(idx, width, s)
		if base != idx*span {
			t.Fatalf("ShardBase(%d) = %d, want %d", idx, base, idx*span)
		}
		if got := ShardOf(base, width, s); got != idx {
			t.Errorf("ShardOf(base %d) = %d, want %d", base, got, idx)
		}
		if got := ShardOf(base+span-1, width, s); got != idx {
			t.Errorf("ShardOf(last %d) = %d, want %d", base+span-1, got, idx)
		}
		if idx > 0 {
			if got := ShardOf(base-1, width, s); got != idx-1 {
				t.Errorf("ShardOf(%d) = %d, want %d", base-1, got, idx-1)
			}
		}
		if got := ShardRest(base, width, s); got != 0 {
			t.Errorf("ShardRest(base %d) = %d, want 0", base, got)
		}
	}
}

// TestShardOfMonotone: routing preserves key order at shard granularity,
// the property the stitched Ascend relies on.
func TestShardOfMonotone(t *testing.T) {
	const width, s = 8, 2
	prev := uint64(0)
	for k := uint64(0); k < 1<<width; k++ {
		idx := ShardOf(k, width, s)
		if idx < prev {
			t.Fatalf("ShardOf not monotone at key %d: %d after %d", k, idx, prev)
		}
		prev = idx
	}
	if prev != 1<<s-1 {
		t.Fatalf("top shard index %d, want %d", prev, uint64(1<<s-1))
	}
}

// TestShardZeroBits: s = 0 is the single-shard degenerate case — every
// key routes to shard 0 unchanged.
func TestShardZeroBits(t *testing.T) {
	for _, k := range []uint64{0, 1, 1<<21 - 1} {
		if ShardOf(k, 21, 0) != 0 {
			t.Errorf("ShardOf(%d, 21, 0) != 0", k)
		}
		if ShardRest(k, 21, 0) != k {
			t.Errorf("ShardRest(%d, 21, 0) != %d", k, k)
		}
	}
	if ShardBase(0, 21, 0) != 0 {
		t.Error("ShardBase(0, 21, 0) != 0")
	}
}

package keys

// MortonKey is the key/label type of the spatial instantiation
// (internal/spatial): a binary string of at most 65 bits stored
// left-aligned in two words, canonical beyond the length. 65 bits fit
// the full 64-bit Morton code space — every (uint32, uint32) point —
// after the usual k -> k+1 shift that frees the all-zeros and all-ones
// strings for the trie's dummy leaves; a single-word key could cover at
// most 63-bit codes (31-bit coordinates).
//
// Like Uint64Key it is a pure value type: no method allocates, so the
// Morton instantiation keeps the wait-free, allocation-free search of
// the fixed-width trie.
type MortonKey struct {
	// w0 holds string bits 0..63, w1 holds bit 64 in its most
	// significant position; both canonical (zero beyond n).
	w0, w1 uint64
	n      uint32
}

// EncodeMorton maps a 64-bit Morton code into the 65-bit internal key
// space as the full-length key m+1, so codes occupy [1, 2^64] and the
// dummies 0^65 and 1^65 stay free.
func EncodeMorton(m uint64) MortonKey {
	lo := m + 1
	var hi uint64
	if lo == 0 { // m+1 carried out of 64 bits: the code 2^64-1
		hi = 1
	}
	return MortonKey{w0: hi<<63 | lo>>1, w1: lo << 63, n: 65}
}

// DecodeMorton inverts EncodeMorton for full-length keys.
func DecodeMorton(k MortonKey) uint64 {
	return (k.w0<<1 | k.w1>>63) - 1
}

// MortonDummyMin returns the 0^65 dummy key.
func MortonDummyMin() MortonKey { return MortonKey{n: 65} }

// MortonDummyMax returns the 1^65 dummy key.
func MortonDummyMax() MortonKey {
	return MortonKey{w0: ^uint64(0), w1: 1 << 63, n: 65}
}

// Bit returns the i-th bit of the string.
func (k MortonKey) Bit(i uint32) int {
	if i < 64 {
		return int(k.w0 >> (63 - i) & 1)
	}
	return int(k.w1 >> (127 - i) & 1)
}

// Len returns the length of the string in bits.
func (k MortonKey) Len() uint32 { return k.n }

// Equal reports whether two strings are identical.
func (k MortonKey) Equal(o MortonKey) bool { return k == o }

// IsPrefixOf reports whether k is a prefix of o.
func (k MortonKey) IsPrefixOf(o MortonKey) bool {
	if k.n > o.n {
		return false
	}
	if k.n <= 64 {
		return k.w0 == o.w0&Mask(k.n)
	}
	return k.w0 == o.w0 && k.w1 == o.w1&Mask(k.n-64)
}

// CommonPrefix returns the longest common prefix of k and o.
func (k MortonKey) CommonPrefix(o MortonKey) MortonKey {
	cpl := CommonPrefixLen(k.w0, o.w0)
	if cpl == 64 {
		cpl += CommonPrefixLen(k.w1, o.w1)
	}
	cpl = min(cpl, k.n, o.n)
	if cpl <= 64 {
		return MortonKey{w0: k.w0 & Mask(cpl), n: cpl}
	}
	return MortonKey{w0: k.w0, w1: k.w1 & Mask(cpl-64), n: cpl}
}

// Compare orders labels prefix-first lexicographically; as with
// Uint64Key, canonical zero-padding lets word comparison stand in for
// bitwise comparison, with the length breaking prefix ties.
func (k MortonKey) Compare(o MortonKey) int {
	switch {
	case k.w0 < o.w0:
		return -1
	case k.w0 > o.w0:
		return 1
	case k.w1 < o.w1:
		return -1
	case k.w1 > o.w1:
		return 1
	case k.n < o.n:
		return -1
	case k.n > o.n:
		return 1
	}
	return 0
}

// Digit returns the i-th s-bit digit (see Key.Digit). Digits with
// s > 1 can straddle bit 64 — the w0/w1 word boundary — so the two
// words are spliced into one window before the final shift. (Go shifts
// by >= 64 would be a concern only at off == 0, where the straddle
// branch cannot trigger because w <= s <= 64.)
func (k MortonKey) Digit(i, s uint32) int {
	pos := i * s
	w := min(s, k.n-pos)
	var top uint64
	if pos < 64 {
		top = k.w0 << pos
		if pos+w > 64 {
			top |= k.w1 >> (64 - pos)
		}
	} else {
		top = k.w1 << (pos - 64)
	}
	return int(top >> (64 - w))
}

// CommonDigitPrefix returns the longest common prefix floored to a whole
// number of s-bit digits (see Key.CommonDigitPrefix).
func (k MortonKey) CommonDigitPrefix(o MortonKey, s uint32) MortonKey {
	cpl := CommonPrefixLen(k.w0, o.w0)
	if cpl == 64 {
		cpl += CommonPrefixLen(k.w1, o.w1)
	}
	cpl = min(cpl, k.n, o.n)
	cpl -= cpl % s
	if cpl <= 64 {
		return MortonKey{w0: k.w0 & Mask(cpl), n: cpl}
	}
	return MortonKey{w0: k.w0, w1: k.w1 & Mask(cpl-64), n: cpl}
}

// String renders the label as "0101..." text ("ε" when empty).
func (k MortonKey) String() string { return renderLabel(k) }

package keys

// Morton (Z-order) encodings map multi-dimensional points to one-dimensional
// trie keys by interleaving coordinate bits. The paper motivates the replace
// operation with exactly this use: "a point in R^2 whose coordinates are
// (x, y) can be represented as a key formed by interleaving the bits of x
// and y ... the replace operation can be used to move a point from one
// location to another atomically."

// Interleave2 interleaves the bits of x and y into a single 64-bit Morton
// code. Bit i of x lands at bit 2i and bit i of y at bit 2i+1 of the result
// (counting from the least significant end).
func Interleave2(x, y uint32) uint64 {
	return spread1(uint64(x)) | spread1(uint64(y))<<1
}

// Deinterleave2 inverts Interleave2.
func Deinterleave2(m uint64) (x, y uint32) {
	return uint32(compact1(m)), uint32(compact1(m >> 1))
}

// Interleave3 interleaves the low 21 bits of x, y and z into a 63-bit
// Morton code.
func Interleave3(x, y, z uint32) uint64 {
	return spread2(uint64(x)) | spread2(uint64(y))<<1 | spread2(uint64(z))<<2
}

// Deinterleave3 inverts Interleave3.
func Deinterleave3(m uint64) (x, y, z uint32) {
	return uint32(compact2(m)), uint32(compact2(m >> 1)), uint32(compact2(m >> 2))
}

// spread1 spaces the low 32 bits of v one position apart.
func spread1(v uint64) uint64 {
	v &= 0xffffffff
	v = (v | v<<16) & 0x0000ffff0000ffff
	v = (v | v<<8) & 0x00ff00ff00ff00ff
	v = (v | v<<4) & 0x0f0f0f0f0f0f0f0f
	v = (v | v<<2) & 0x3333333333333333
	v = (v | v<<1) & 0x5555555555555555
	return v
}

// compact1 inverts spread1, gathering every second bit of v.
func compact1(v uint64) uint64 {
	v &= 0x5555555555555555
	v = (v | v>>1) & 0x3333333333333333
	v = (v | v>>2) & 0x0f0f0f0f0f0f0f0f
	v = (v | v>>4) & 0x00ff00ff00ff00ff
	v = (v | v>>8) & 0x0000ffff0000ffff
	v = (v | v>>16) & 0x00000000ffffffff
	return v
}

// spread2 spaces the low 21 bits of v two positions apart.
func spread2(v uint64) uint64 {
	v &= 0x1fffff
	v = (v | v<<32) & 0x1f00000000ffff
	v = (v | v<<16) & 0x1f0000ff0000ff
	v = (v | v<<8) & 0x100f00f00f00f00f
	v = (v | v<<4) & 0x10c30c30c30c30c3
	v = (v | v<<2) & 0x1249249249249249
	return v
}

// compact2 inverts spread2, gathering every third bit of v.
func compact2(v uint64) uint64 {
	v &= 0x1249249249249249
	v = (v | v>>2) & 0x10c30c30c30c30c3
	v = (v | v>>4) & 0x100f00f00f00f00f
	v = (v | v>>8) & 0x1f0000ff0000ff
	v = (v | v>>16) & 0x1f00000000ffff
	v = (v | v>>32) & 0x1fffff
	return v
}

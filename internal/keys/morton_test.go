package keys

import (
	"testing"
	"testing/quick"
)

func TestInterleave2Examples(t *testing.T) {
	cases := []struct {
		x, y uint32
		want uint64
	}{
		{0, 0, 0},
		{1, 0, 1},
		{0, 1, 2},
		{1, 1, 3},
		{0xffffffff, 0, 0x5555555555555555},
		{0, 0xffffffff, 0xaaaaaaaaaaaaaaaa},
	}
	for _, c := range cases {
		if got := Interleave2(c.x, c.y); got != c.want {
			t.Errorf("Interleave2(%d,%d) = %#x, want %#x", c.x, c.y, got, c.want)
		}
	}
}

func TestInterleave2RoundTrip(t *testing.T) {
	f := func(x, y uint32) bool {
		gx, gy := Deinterleave2(Interleave2(x, y))
		return gx == x && gy == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInterleave3RoundTrip(t *testing.T) {
	f := func(x, y, z uint32) bool {
		x &= 0x1fffff
		y &= 0x1fffff
		z &= 0x1fffff
		gx, gy, gz := Deinterleave3(Interleave3(x, y, z))
		return gx == x && gy == y && gz == z
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMortonLocality(t *testing.T) {
	// Points that share high coordinate bits share Morton prefixes: the
	// defining property that makes Morton keys useful in a Patricia trie.
	a := Interleave2(0x1200, 0x3400)
	b := Interleave2(0x1201, 0x3401)
	c := Interleave2(0xff00, 0x00ff)
	if CommonPrefixLen(a<<0, b<<0) <= CommonPrefixLen(a, c) {
		t.Error("nearby points should share a longer Morton prefix than distant ones")
	}
}
